//! Serving metrics: lock-free counters/gauges the step loop and connection
//! handlers update, rendered as a Prometheus-style text exposition at
//! `GET /metrics`.
//!
//! Counters are monotonically increasing totals; gauges are
//! point-in-time values the step loop refreshes every iteration. Latency
//! distributions (TTFT, end-to-end latency, queue wait, step duration,
//! batch occupancy) are fixed-bucket [`Histogram`]s from `tmac-trace` —
//! one implementation shared with the tracing layer, so the `_bucket`
//! series and the legacy avg/max/observations lines (derived from the
//! same histogram's sum/count/max) cannot drift apart.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;
use tmac_trace::{Histogram, LATENCY_BOUNDS_S, OCCUPANCY_BOUNDS, STEP_BOUNDS_S};

/// One monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A point-in-time value (stored as `u64`).
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Replaces the value.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds 1 (for up/down tracking like open connections).
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Subtracts 1, saturating at zero.
    pub fn dec(&self) {
        let _ = self
            .0
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_sub(1))
            });
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// (average milliseconds, observation count, max milliseconds) of a
/// seconds-valued histogram — the legacy `/metrics` aggregate lines,
/// derived from the same counters as the `_bucket` series.
fn snapshot_ms(h: &Histogram) -> (f64, u64, f64) {
    let n = h.count();
    let avg = if n == 0 {
        0.0
    } else {
        h.sum() / n as f64 * 1e3
    };
    (avg, n, h.max() * 1e3)
}

/// All serving metrics, shared (behind an `Arc`) between the listener,
/// connection handlers, and the scheduler step loop.
#[derive(Debug)]
pub struct Metrics {
    /// Process start (uptime base for tok/s).
    start: Instant,
    /// `POST /v1/completions` requests received (any outcome).
    pub req_completions: Counter,
    /// `GET /metrics` requests.
    pub req_metrics: Counter,
    /// `GET /healthz` requests.
    pub req_healthz: Counter,
    /// Requests to any other route (404/405 paths).
    pub req_other: Counter,
    /// Responses by status class.
    pub resp_2xx: Counter,
    /// 4xx responses, except 429 (counted separately as sheds).
    pub resp_4xx: Counter,
    /// 429 admission rejections (queue-full backpressure).
    pub resp_429: Counter,
    /// 5xx responses (includes 503 drain refusals and 504 deadlines).
    pub resp_5xx: Counter,
    /// Completion tokens streamed/returned to clients.
    pub tokens_out: Counter,
    /// Sequences finished with `finish_reason = length`.
    pub finished_length: Counter,
    /// Sequences ended by a stop sequence (`finish_reason = stop`).
    pub finished_stop: Counter,
    /// Sequences cancelled (client disconnect or explicit cancel).
    pub finished_cancelled: Counter,
    /// Sequences past their deadline (subset of cancellations, reported
    /// separately).
    pub finished_deadline: Counter,
    /// Sequences retired by model errors.
    pub finished_error: Counter,
    /// Submitted-but-not-yet-active requests (queue depth).
    pub queue_depth: Gauge,
    /// Sequences currently decoding (batch occupancy).
    pub active_seqs: Gauge,
    /// KV slots in use (== active sequences; kept separate so the slot
    /// capacity pairing below always reads together).
    pub kv_slots_used: Gauge,
    /// KV slot capacity (`SchedulerConfig::max_batch`).
    pub kv_slots_total: Gauge,
    /// KV pages currently referenced by sequences or the prefix index.
    pub kv_pages_used: Gauge,
    /// KV pages allocated in the pool arena (used + free-listed).
    pub kv_pages_total: Gauge,
    /// Bytes resident in allocated KV pages.
    pub kv_resident_bytes: Gauge,
    /// Cumulative radix prompt-cache hits (submits that reused pages);
    /// mirrors `KvStats::prefix_hits`, refreshed per step.
    pub prefix_hits: Gauge,
    /// Cumulative positions whose prefill was skipped via prefix reuse.
    pub prefix_hit_positions: Gauge,
    /// Cumulative copy-on-write page forks.
    pub kv_cow_forks: Gauge,
    /// Cumulative prefix-cache page evictions under budget pressure.
    pub kv_evictions: Gauge,
    /// Open client connections.
    pub connections: Gauge,
    /// Step-loop restarts performed by the bridge supervisor (each one
    /// means a panic escaped the scheduler's quarantine).
    pub step_loop_restarts: Counter,
    /// Sequences error-retired by the scheduler's fault quarantine
    /// (mirror of `Scheduler::quarantined_total`, refreshed per step).
    pub quarantined: Gauge,
    /// Micros since `start` at the step loop's last heartbeat; rendered
    /// as `tmac_last_step_age_seconds` (uptime minus this).
    pub heartbeat_us: Gauge,
    /// Time from admission request to first token (prefill + queueing),
    /// seconds.
    pub ttft: Histogram,
    /// Time from admission request to completion, seconds.
    pub request_latency: Histogram,
    /// Time a request waited for a KV slot (scheduler submit → admit),
    /// seconds.
    pub queue_wait: Histogram,
    /// Duration of one step-loop iteration (admission + batched decode),
    /// seconds.
    pub step_duration: Histogram,
    /// Active sequences per scheduler step (batch occupancy; unitless).
    pub batch_occupancy: Histogram,
}

impl Metrics {
    /// Fresh zeroed metrics with the uptime clock started.
    pub fn new() -> Self {
        Metrics {
            start: Instant::now(),
            req_completions: Counter::default(),
            req_metrics: Counter::default(),
            req_healthz: Counter::default(),
            req_other: Counter::default(),
            resp_2xx: Counter::default(),
            resp_4xx: Counter::default(),
            resp_429: Counter::default(),
            resp_5xx: Counter::default(),
            tokens_out: Counter::default(),
            finished_length: Counter::default(),
            finished_stop: Counter::default(),
            finished_cancelled: Counter::default(),
            finished_deadline: Counter::default(),
            finished_error: Counter::default(),
            queue_depth: Gauge::default(),
            active_seqs: Gauge::default(),
            kv_slots_used: Gauge::default(),
            kv_slots_total: Gauge::default(),
            kv_pages_used: Gauge::default(),
            kv_pages_total: Gauge::default(),
            kv_resident_bytes: Gauge::default(),
            prefix_hits: Gauge::default(),
            prefix_hit_positions: Gauge::default(),
            kv_cow_forks: Gauge::default(),
            kv_evictions: Gauge::default(),
            connections: Gauge::default(),
            step_loop_restarts: Counter::default(),
            quarantined: Gauge::default(),
            heartbeat_us: Gauge::default(),
            ttft: Histogram::new(LATENCY_BOUNDS_S),
            request_latency: Histogram::new(LATENCY_BOUNDS_S),
            queue_wait: Histogram::new(LATENCY_BOUNDS_S),
            step_duration: Histogram::new(STEP_BOUNDS_S),
            batch_occupancy: Histogram::new(OCCUPANCY_BOUNDS),
        }
    }

    /// Stamps the step-loop heartbeat at "now" on the uptime clock.
    pub fn mark_heartbeat(&self) {
        self.heartbeat_us
            .set(self.start.elapsed().as_micros() as u64);
    }

    /// Seconds since the step loop's last heartbeat.
    pub fn last_step_age_seconds(&self) -> f64 {
        (self.start.elapsed().as_secs_f64() - self.heartbeat_us.get() as f64 / 1e6).max(0.0)
    }

    /// Internal-consistency check over a quiesced snapshot: every
    /// completions request must have produced exactly one response, and
    /// in-flight gauges must have drained to zero. Only meaningful once
    /// all connections are closed (mid-flight requests legitimately break
    /// the equality). Returns the violations found (empty == consistent).
    pub fn consistency_violations(&self) -> Vec<String> {
        let mut v = Vec::new();
        let responses =
            self.resp_2xx.get() + self.resp_4xx.get() + self.resp_429.get() + self.resp_5xx.get();
        let requests = self.req_completions.get()
            + self.req_metrics.get()
            + self.req_healthz.get()
            + self.req_other.get();
        if responses != requests {
            v.push(format!(
                "responses by class ({responses}) != requests received ({requests})"
            ));
        }
        for (name, g) in [
            ("queue_depth", &self.queue_depth),
            ("active_seqs", &self.active_seqs),
            ("kv_slots_used", &self.kv_slots_used),
            ("connections", &self.connections),
        ] {
            if g.get() != 0 {
                v.push(format!("gauge {name} = {} after quiesce", g.get()));
            }
        }
        v
    }

    /// Counts a response status into its class counter.
    pub fn count_status(&self, status: u16) {
        match status {
            429 => self.resp_429.inc(),
            200..=299 => self.resp_2xx.inc(),
            400..=499 => self.resp_4xx.inc(),
            _ => self.resp_5xx.inc(),
        }
    }

    /// Renders the Prometheus-style text exposition.
    pub fn render(&self) -> String {
        let uptime = self.start.elapsed().as_secs_f64().max(1e-9);
        let toks = self.tokens_out.get();
        let (ttft_avg, ttft_n, ttft_max) = snapshot_ms(&self.ttft);
        let (lat_avg, lat_n, lat_max) = snapshot_ms(&self.request_latency);
        let mut s = String::with_capacity(1024);
        let mut line = |k: &str, v: f64| {
            s.push_str(k);
            s.push(' ');
            if v.fract() == 0.0 && v.abs() < 2f64.powi(53) {
                s.push_str(&format!("{}\n", v as i64));
            } else {
                s.push_str(&format!("{v:.3}\n"));
            }
        };
        line("tmac_uptime_seconds", uptime);
        line(
            "tmac_requests_total{route=\"completions\"}",
            self.req_completions.get() as f64,
        );
        line(
            "tmac_requests_total{route=\"metrics\"}",
            self.req_metrics.get() as f64,
        );
        line(
            "tmac_requests_total{route=\"healthz\"}",
            self.req_healthz.get() as f64,
        );
        line(
            "tmac_requests_total{route=\"other\"}",
            self.req_other.get() as f64,
        );
        line(
            "tmac_responses_total{class=\"2xx\"}",
            self.resp_2xx.get() as f64,
        );
        line(
            "tmac_responses_total{class=\"4xx\"}",
            self.resp_4xx.get() as f64,
        );
        line(
            "tmac_responses_total{class=\"429\"}",
            self.resp_429.get() as f64,
        );
        line(
            "tmac_responses_total{class=\"5xx\"}",
            self.resp_5xx.get() as f64,
        );
        line("tmac_tokens_generated_total", toks as f64);
        line("tmac_tokens_per_second", toks as f64 / uptime);
        line(
            "tmac_finished_total{reason=\"length\"}",
            self.finished_length.get() as f64,
        );
        line(
            "tmac_finished_total{reason=\"stop\"}",
            self.finished_stop.get() as f64,
        );
        line(
            "tmac_finished_total{reason=\"cancelled\"}",
            self.finished_cancelled.get() as f64,
        );
        line(
            "tmac_finished_total{reason=\"deadline\"}",
            self.finished_deadline.get() as f64,
        );
        line(
            "tmac_finished_total{reason=\"error\"}",
            self.finished_error.get() as f64,
        );
        line("tmac_queue_depth", self.queue_depth.get() as f64);
        line("tmac_active_sequences", self.active_seqs.get() as f64);
        line("tmac_kv_slots_used", self.kv_slots_used.get() as f64);
        line("tmac_kv_slots_total", self.kv_slots_total.get() as f64);
        line("tmac_kv_pages_used", self.kv_pages_used.get() as f64);
        line("tmac_kv_pages_total", self.kv_pages_total.get() as f64);
        line(
            "tmac_kv_resident_bytes",
            self.kv_resident_bytes.get() as f64,
        );
        line("tmac_prefix_hits_total", self.prefix_hits.get() as f64);
        line(
            "tmac_prefix_hit_positions_total",
            self.prefix_hit_positions.get() as f64,
        );
        line("tmac_kv_cow_forks_total", self.kv_cow_forks.get() as f64);
        line("tmac_kv_evictions_total", self.kv_evictions.get() as f64);
        line("tmac_connections_open", self.connections.get() as f64);
        line(
            "tmac_step_loop_restarts_total",
            self.step_loop_restarts.get() as f64,
        );
        line("tmac_quarantined_total", self.quarantined.get() as f64);
        line("tmac_last_step_age_seconds", self.last_step_age_seconds());
        line("tmac_ttft_ms_avg", ttft_avg);
        line("tmac_ttft_ms_max", ttft_max);
        line("tmac_ttft_observations", ttft_n as f64);
        line("tmac_request_latency_ms_avg", lat_avg);
        line("tmac_request_latency_ms_max", lat_max);
        line("tmac_request_latency_observations", lat_n as f64);
        self.ttft.render_prometheus("tmac_ttft_seconds", &mut s);
        self.request_latency
            .render_prometheus("tmac_e2e_latency_seconds", &mut s);
        self.queue_wait
            .render_prometheus("tmac_queue_wait_seconds", &mut s);
        self.step_duration
            .render_prometheus("tmac_step_duration_seconds", &mut s);
        self.batch_occupancy
            .render_prometheus("tmac_batch_occupancy", &mut s);
        s
    }
}

impl Default for Metrics {
    fn default() -> Self {
        Metrics::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_contains_every_family_and_parses_as_key_value() {
        let m = Metrics::new();
        m.req_completions.inc();
        m.tokens_out.add(42);
        m.count_status(200);
        m.count_status(429);
        m.count_status(404);
        m.count_status(503);
        m.ttft.observe(0.0015);
        m.queue_wait.observe(0.004);
        m.step_duration.observe(0.0002);
        m.batch_occupancy.observe(3.0);
        m.kv_slots_total.set(16);
        let text = m.render();
        for key in [
            "tmac_uptime_seconds",
            "tmac_requests_total{route=\"completions\"} 1",
            "tmac_tokens_generated_total 42",
            "tmac_responses_total{class=\"2xx\"} 1",
            "tmac_responses_total{class=\"429\"} 1",
            "tmac_responses_total{class=\"4xx\"} 1",
            "tmac_responses_total{class=\"5xx\"} 1",
            "tmac_ttft_ms_avg 1.5",
            "tmac_kv_slots_total 16",
            // The five histogram families, cumulative-le with +Inf closing.
            "tmac_ttft_seconds_bucket{le=\"0.0025\"} 1",
            "tmac_ttft_seconds_bucket{le=\"+Inf\"} 1",
            "tmac_ttft_seconds_count 1",
            "tmac_e2e_latency_seconds_bucket{le=\"+Inf\"} 0",
            "tmac_queue_wait_seconds_bucket{le=\"0.005\"} 1",
            "tmac_step_duration_seconds_bucket{le=\"0.00025\"} 1",
            "tmac_batch_occupancy_bucket{le=\"4\"} 1",
            "tmac_batch_occupancy_bucket{le=\"2\"} 0",
        ] {
            assert!(text.contains(key), "missing {key:?} in:\n{text}");
        }
        for l in text.lines() {
            let (_, v) = l.rsplit_once(' ').unwrap();
            v.parse::<f64>().unwrap();
        }
    }

    #[test]
    fn supervision_metrics_render_and_age_follows_heartbeat() {
        let m = Metrics::new();
        m.step_loop_restarts.inc();
        m.quarantined.set(3);
        m.mark_heartbeat();
        let text = m.render();
        for key in [
            "tmac_step_loop_restarts_total 1",
            "tmac_quarantined_total 3",
            "tmac_last_step_age_seconds",
        ] {
            assert!(text.contains(key), "missing {key:?} in:\n{text}");
        }
        assert!(
            m.last_step_age_seconds() < 1.0,
            "age must be ~0 right after a heartbeat"
        );
    }

    #[test]
    fn consistency_violations_flag_imbalance_and_stuck_gauges() {
        let m = Metrics::new();
        assert!(m.consistency_violations().is_empty(), "fresh is consistent");
        m.req_completions.inc();
        m.queue_depth.set(2);
        let v = m.consistency_violations();
        assert_eq!(v.len(), 2, "got {v:?}");
        assert!(v[0].contains("responses by class"));
        assert!(v[1].contains("queue_depth"));
        m.count_status(200);
        m.queue_depth.set(0);
        assert!(m.consistency_violations().is_empty());
    }
}
