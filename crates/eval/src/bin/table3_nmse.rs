//! Table 3: NMSE of mpGEMV outputs relative to the unquantized
//! `W_fp A_fp` kernel, for llama.cpp, T-MAC, and T-MAC (+FA), on the
//! Llama-2-7B GEMV shapes, 4-bit weights, Gaussian inputs.
//!
//! Usage: `table3_nmse [--quick]`

use tmac_baseline::DequantLinear;
use tmac_core::ExecCtx;
use tmac_core::{KernelOpts, TmacLinear};
use tmac_eval::{make_act, make_weights, quick, Table, SHAPES};
use tmac_simd::f32ops::nmse;

fn main() {
    let ctx = ExecCtx::new(
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    );
    let shapes: &[(usize, usize)] = if quick() { &SHAPES[..1] } else { &SHAPES[..3] };
    // Paper-measured references (4096x4096, 11008x4096, 4096x11008).
    let paper = [
        (3.33e-3, 3.35e-3, 8.09e-3),
        (3.44e-3, 3.46e-3, 8.27e-3),
        (4.13e-3, 4.15e-3, 8.45e-3),
    ];

    let mut table = Table::new(&[
        "MxKxN",
        "llama.cpp",
        "T-MAC",
        "T-MAC (+FA)",
        "paper (llama.cpp / T-MAC / +FA)",
    ]);
    for (si, &(m, k)) in shapes.iter().enumerate() {
        let w = make_weights(m, k, 31);
        let act = make_act(k, 31);
        // Unquantized ground truth in f64.
        let mut reference = vec![0f32; m];
        for (mi, r) in reference.iter_mut().enumerate() {
            let mut acc = 0f64;
            for ki in 0..k {
                acc += w[mi * k + ki] as f64 * act[ki] as f64;
            }
            *r = acc as f32;
        }
        let qm = tmac_quant::rtn::quantize(&w, m, k, 4, 32).expect("quantize");
        let mut out = vec![0f32; m];

        let bl = DequantLinear::new(&qm).expect("pack");
        bl.gemv(&act, &mut out, &ctx).expect("gemv");
        let e_base = nmse(&out, &reference);

        let tl = TmacLinear::new(&qm, KernelOpts::tmac()).expect("plan");
        tl.gemv(&act, &mut out, &ctx).expect("gemv");
        let e_tmac = nmse(&out, &reference);

        let tf = TmacLinear::new(&qm, KernelOpts::tmac_fast_aggregation()).expect("plan");
        tf.gemv(&act, &mut out, &ctx).expect("gemv");
        let e_fa = nmse(&out, &reference);

        let p = paper.get(si).copied().unwrap_or(paper[0]);
        table.row(vec![
            format!("{m}x{k}x1"),
            format!("{e_base:.2e}"),
            format!("{e_tmac:.2e}"),
            format!("{e_fa:.2e}"),
            format!("{:.2e} / {:.2e} / {:.2e}", p.0, p.1, p.2),
        ]);
    }
    println!("Table 3: NMSE vs unquantized GEMV (4-bit weights)\n");
    table.emit("table3_nmse");
    println!(
        "Paper shape check: T-MAC's table quantization adds negligible error over\n\
         llama.cpp's dequant path; fast aggregation multiplies NMSE by ~2.5x."
    );
}
