//! `tmac_serve` — the serving daemon: loads (or synthesizes) a model and
//! exposes it over HTTP until SIGINT/SIGTERM triggers a graceful drain.
//!
//! ```text
//! tmac_convert --in m.gguf --out m.tmac     # once
//! tmac_serve --model m.tmac --addr 127.0.0.1:8080
//! curl -N localhost:8080/v1/completions -d '{"prompt":[1,2,3],"stream":true}'
//! ```
//!
//! Flags: `--model tiny|<path.tmac|.gguf>` (synthetic tiny model or a
//! container; containers resolve `--backend <registry name>`),
//! `--addr host:port` (default `127.0.0.1:8080`), `--threads N` (step-loop
//! ExecCtx threads), `--batch B` (KV slots), `--pending Q` (admission queue
//! bound; 0 = unbounded), `--mode auto|epoll|threads` (connection driver),
//! `--max-tokens N` (default when a request omits `max_tokens`),
//! `--deadline-ms D` (default deadline; 0 = none), `--kv f32|i8`,
//! `--trace-out DIR` (dump the in-memory span rings as Chrome-trace JSON
//! into `DIR` on every SIGUSR1 and once more when the drain completes;
//! load the files in Perfetto or `chrome://tracing`).
//!
//! On SIGINT or SIGTERM the server stops accepting, finishes every
//! in-flight sequence, then exits 0 (second signal: immediate abort).

use std::sync::atomic::{AtomicU32, Ordering};
use std::time::Duration;
use tmac_core::ExecCtx;
use tmac_llm::batch::{Scheduler, SchedulerConfig};
use tmac_llm::{
    BackendKind, BackendRegistry, KvPrecision, LoadMode, Model, ModelConfig, WeightQuant,
};
use tmac_serve::{ConnMode, ServerConfig};

static SIGNALS: AtomicU32 = AtomicU32::new(0);
static TRACE_DUMPS: AtomicU32 = AtomicU32::new(0);

#[cfg(unix)]
fn install_signal_handlers() {
    use std::os::raw::c_int;
    extern "C" {
        fn signal(signum: c_int, handler: usize) -> usize;
    }
    extern "C" fn on_signal(_sig: c_int) {
        SIGNALS.fetch_add(1, Ordering::SeqCst);
    }
    extern "C" fn on_sigusr1(_sig: c_int) {
        TRACE_DUMPS.fetch_add(1, Ordering::SeqCst);
    }
    const SIGINT: c_int = 2;
    const SIGTERM: c_int = 15;
    const SIGUSR1: c_int = 10;
    unsafe {
        signal(SIGINT, on_signal as *const () as usize);
        signal(SIGTERM, on_signal as *const () as usize);
        signal(SIGUSR1, on_sigusr1 as *const () as usize);
    }
}

#[cfg(not(unix))]
fn install_signal_handlers() {}

/// Writes the current span rings to `dir/trace-<n>.json` (Chrome Trace
/// Event Format). Serving continues; the rings are not reset, so later
/// dumps are supersets until the per-thread buffers wrap.
fn dump_trace(dir: &str, n: u32) {
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("tmac_serve: cannot create --trace-out dir {dir:?}: {e}");
        return;
    }
    let path = format!("{dir}/trace-{n}.json");
    match std::fs::write(&path, tmac_trace::chrome_trace_json()) {
        Ok(()) => eprintln!("tmac_serve: wrote {path}"),
        Err(e) => eprintln!("tmac_serve: cannot write {path}: {e}"),
    }
}

fn main() {
    let model_name = tmac_eval::arg("model", "tiny");
    let addr = tmac_eval::arg("addr", "127.0.0.1:8080");
    let threads: usize = tmac_eval::arg("threads", "1").parse().expect("--threads");
    let max_batch: usize = tmac_eval::arg("batch", "4").parse().expect("--batch");
    let max_pending: usize = tmac_eval::arg("pending", "64").parse().expect("--pending");
    let default_max_tokens: usize = tmac_eval::arg("max-tokens", "16")
        .parse()
        .expect("--max-tokens");
    let default_deadline_ms: u64 = tmac_eval::arg("deadline-ms", "0")
        .parse()
        .expect("--deadline-ms");
    let mode = match tmac_eval::arg("mode", "auto").as_str() {
        "auto" => ConnMode::Auto,
        "epoll" => ConnMode::Epoll,
        "threads" => ConnMode::Threads,
        other => panic!("unknown --mode {other:?} (auto|epoll|threads)"),
    };
    let kv = match tmac_eval::arg("kv", "f32").as_str() {
        "f32" => KvPrecision::F32,
        "i8" => KvPrecision::I8,
        other => panic!("unknown --kv {other:?} (f32|i8)"),
    };
    let trace_out = tmac_eval::arg("trace-out", "");

    let from_file = ["tmac", "gguf"]
        .iter()
        .any(|ext| model_name.ends_with(&format!(".{ext}")));
    let mut model = if from_file {
        let backend = tmac_eval::arg("backend", "tmac");
        let builder = BackendRegistry::with_defaults()
            .get(&backend)
            .unwrap_or_else(|| panic!("unknown --backend {backend:?}"));
        let t0 = std::time::Instant::now();
        let model = Model::from_file(
            std::path::Path::new(&model_name),
            builder.as_ref(),
            LoadMode::Mmap,
        )
        .expect("load model container");
        eprintln!(
            "loaded {} from {model_name} in {:.3}s ({} backend)",
            model.cfg.name,
            t0.elapsed().as_secs_f64(),
            model.backend_label()
        );
        model
    } else {
        assert_eq!(
            model_name, "tiny",
            "--model must be tiny or a .tmac/.gguf path"
        );
        Model::synthetic(
            &ModelConfig::tiny().scaled(2, 96, 256),
            WeightQuant::Rtn(2),
            BackendKind::Tmac(tmac_core::KernelOpts::tmac()),
            7,
        )
        .expect("synthetic model")
    };
    model.cfg.kv_precision = kv;

    let sched = Scheduler::new(
        model,
        SchedulerConfig {
            max_batch,
            max_pending,
            ..SchedulerConfig::default()
        },
    );
    install_signal_handlers();
    let server = tmac_serve::start(
        sched,
        ExecCtx::new(threads),
        ServerConfig {
            addr,
            mode,
            default_max_tokens,
            default_deadline_ms,
            ..ServerConfig::default()
        },
    )
    .expect("start server");
    eprintln!(
        "tmac_serve listening on http://{} ({} slots, {} queue, {} thread(s))",
        server.addr(),
        max_batch,
        max_pending,
        threads
    );

    let mut dumps_seen = 0u32;
    while SIGNALS.load(Ordering::SeqCst) == 0 {
        std::thread::sleep(Duration::from_millis(100));
        // SIGUSR1: snapshot the trace without disturbing serving.
        let dumps = TRACE_DUMPS.load(Ordering::SeqCst);
        if dumps > dumps_seen && !trace_out.is_empty() {
            for n in dumps_seen..dumps {
                dump_trace(&trace_out, n);
            }
        }
        dumps_seen = dumps;
    }
    eprintln!("tmac_serve: draining (signal again to abort)...");
    server.drain();
    // Poll for a second signal while the drain completes.
    let abort = std::thread::spawn({
        let metrics = server.metrics();
        move || {
            while SIGNALS.load(Ordering::SeqCst) < 2 {
                std::thread::sleep(Duration::from_millis(50));
                // The drain is done once nothing is queued, active, or open.
                if metrics.queue_depth.get() == 0
                    && metrics.active_seqs.get() == 0
                    && metrics.connections.get() == 0
                {
                    return false;
                }
            }
            true
        }
    });
    if abort.join().unwrap_or(true) {
        eprintln!("tmac_serve: aborting");
        server.abort();
    } else {
        server.join();
    }
    // Final snapshot once all in-flight work has finished, so a plain
    // SIGTERM run still leaves a loadable trace behind.
    if !trace_out.is_empty() {
        dump_trace(&trace_out, dumps_seen);
    }
    eprintln!("tmac_serve: bye");
}
