//! Kernel-variant diagnostic: times each option combination at one shape to
//! attribute costs (development tool, not a paper figure).

use tmac_core::ExecCtx;
use tmac_core::{gemv, KernelOpts, WeightPlan};
use tmac_eval::{make_act, make_weights, ms, time_best};

fn main() {
    let m = tmac_eval::arg("m", "4096").parse::<usize>().expect("--m");
    let k = tmac_eval::arg("k", "4096").parse::<usize>().expect("--k");
    let bits = tmac_eval::arg("bits", "4").parse::<u8>().expect("--bits");
    let threads = tmac_eval::arg("threads", "1")
        .parse::<usize>()
        .expect("--threads");
    let ctx = ExecCtx::new(threads);
    let w = make_weights(m, k, 7);
    let act = make_act(k, 7);
    let mut out = vec![0f32; m];
    let qm = tmac_quant::rtn::quantize(&w, m, k, bits, 32).expect("quantize");

    let mut variants: Vec<(&str, KernelOpts)> = vec![
        ("perm (no IL, no mirror)", KernelOpts::plus_permute()),
        ("perm+IL", {
            let mut o = KernelOpts::plus_permute();
            o.interleave = true;
            o
        }),
        ("perm+IL+mirror (tmac)", KernelOpts::tmac()),
        ("tmac tile_k=512", KernelOpts::plus_tuning(512, 8)),
        ("tmac+FA", KernelOpts::tmac_fast_aggregation()),
        ("flat+TQ", KernelOpts::plus_table_quant()),
    ];
    let mut no_mirror_il = KernelOpts::tmac();
    no_mirror_il.mirror = false;
    variants.insert(2, ("perm+IL no-mirror gs", no_mirror_il));

    println!("shape {m}x{k} bits={bits} threads={threads}");
    for (name, opts) in variants {
        let plan = match WeightPlan::new(&qm, opts) {
            Ok(p) => p,
            Err(e) => {
                println!("{name:28} SKIP ({e})");
                continue;
            }
        };
        let tables = gemv::build_tables(&plan, &act).expect("tables");
        let t_table = time_best(
            || {
                let _ = gemv::build_tables(&plan, &act).expect("tables");
            },
            2,
            10,
        );
        let t_kernel = time_best(
            || gemv::mpgemv_with_tables(&plan, &tables, &mut out, &ctx).expect("gemv"),
            3,
            20,
        );
        println!(
            "{name:28} kernel {} ms   precompute {} ms",
            ms(t_kernel),
            ms(t_table)
        );
    }
}
