//! Kernel-variant diagnostic: times each option combination at one shape to
//! attribute costs (development tool, not a paper figure).

use tmac_core::ExecCtx;
use tmac_core::{gemv, KernelOpts, WeightPlan};
use tmac_eval::{make_act, make_weights, ms, time_best};

fn main() {
    let m = tmac_eval::arg("m", "4096").parse::<usize>().expect("--m");
    let k = tmac_eval::arg("k", "4096").parse::<usize>().expect("--k");
    let bits = tmac_eval::arg("bits", "4").parse::<u8>().expect("--bits");
    let threads = tmac_eval::arg("threads", "1")
        .parse::<usize>()
        .expect("--threads");
    let ctx = ExecCtx::new(threads);
    let w = make_weights(m, k, 7);
    let act = make_act(k, 7);
    let mut out = vec![0f32; m];
    let qm = tmac_quant::rtn::quantize(&w, m, k, bits, 32).expect("quantize");

    let mut variants: Vec<(&str, KernelOpts)> = vec![
        ("perm (no IL, no mirror)", KernelOpts::plus_permute()),
        ("perm+IL", {
            let mut o = KernelOpts::plus_permute();
            o.interleave = true;
            o
        }),
        ("perm+IL+mirror (tmac)", KernelOpts::tmac()),
        ("tmac tile_k=512", KernelOpts::plus_tuning(512, 8)),
        ("tmac+FA", KernelOpts::tmac_fast_aggregation()),
        ("flat+TQ", KernelOpts::plus_table_quant()),
    ];
    let mut no_mirror_il = KernelOpts::tmac();
    no_mirror_il.mirror = false;
    variants.insert(2, ("perm+IL no-mirror gs", no_mirror_il));

    println!("shape {m}x{k} bits={bits} threads={threads}");
    for (name, opts) in variants {
        let plan = match WeightPlan::new(&qm, opts) {
            Ok(p) => p,
            Err(e) => {
                println!("{name:28} SKIP ({e})");
                continue;
            }
        };
        let tables = gemv::build_tables(&plan, &act).expect("tables");
        let t_table = time_best(
            || {
                let _ = gemv::build_tables(&plan, &act).expect("tables");
            },
            2,
            10,
        );
        let t_kernel = time_best(
            || gemv::mpgemv_with_tables(&plan, &tables, &mut out, &ctx).expect("gemv"),
            3,
            20,
        );
        println!(
            "{name:28} kernel {} ms   precompute {} ms",
            ms(t_kernel),
            ms(t_table)
        );
    }

    // Multi-row mpGEMM probe: row_block × kg_panel at a fixed batch size,
    // against the 16-sequential-GEMV baseline.
    let n = tmac_eval::arg("n", "16").parse::<usize>().expect("--n");
    let acts = make_act(n * k, 11);
    let mut outs = vec![0f32; n * m];
    let base_plan = WeightPlan::new(&qm, KernelOpts::tmac()).expect("plan");
    let t_seq = time_best(
        || {
            for ni in 0..n {
                gemv::mpgemv(&base_plan, &acts[ni * k..(ni + 1) * k], &mut out, &ctx)
                    .expect("gemv");
            }
        },
        2,
        8,
    );
    println!(
        "\nmpGEMM n={n} (baseline: {n} sequential GEMVs = {} ms)",
        ms(t_seq)
    );
    for rb in tmac_core::tune::ROW_BLOCK_CANDIDATES {
        for kp in tmac_core::tune::KG_PANEL_CANDIDATES {
            if rb == 1 && kp != 0 {
                continue; // panels only matter for the multi-row sweep
            }
            let mut opts = KernelOpts::tmac();
            opts.row_block = rb;
            opts.kg_panel = kp;
            opts.n_block = opts.n_block.max(rb);
            let plan = WeightPlan::new(&qm, opts).expect("plan");
            let t = time_best(
                || tmac_core::gemm::mpgemm(&plan, &acts, n, &mut outs, &ctx).expect("gemm"),
                2,
                8,
            );
            println!(
                "row_block={rb} kg_panel={kp:5} {} ms   {:.2}x vs sequential",
                ms(t),
                t_seq / t
            );
        }
    }

    // Attention probe: per-layer attention time (all heads) over the
    // head-major KV cache, f32 two-pass vs i8 fused streaming-softmax, at
    // increasing context length (Llama-7B head geometry: 32 heads x 128).
    let attn_cfg = tmac_llm::ModelConfig::llama2_7b().scaled(1, 64, 2048 + 8);
    println!(
        "\nattn probe ({} heads x {} head_dim, threads={threads})",
        attn_cfg.n_heads,
        attn_cfg.head_dim()
    );
    for seq in [128usize, 512, 2048] {
        let f =
            tmac_eval::attn::attn_seconds(&attn_cfg, tmac_llm::KvPrecision::F32, seq, &ctx, 1, 5);
        let i =
            tmac_eval::attn::attn_seconds(&attn_cfg, tmac_llm::KvPrecision::I8, seq, &ctx, 1, 5);
        println!(
            "seq={seq:5} f32 {} ms   i8 {} ms   {:.2}x",
            ms(f),
            ms(i),
            f / i
        );
    }
}
