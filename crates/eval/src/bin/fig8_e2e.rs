//! Figure 8: end-to-end token-generation throughput, llama.cpp vs T-MAC,
//! for M1 = Llama-2-7B-4bit, M2 = Llama-2-7B-2bit, M3 = BitNet-3B.
//!
//! Full checkpoints do not fit the host, so each model runs as a *scaled*
//! configuration (identical per-layer shapes, `--layers` layers, reduced
//! vocabulary) and per-token time extrapolates by layer count (decode is
//! layer-dominated weight streaming; see DESIGN.md). Cross-device series for
//! the paper's four devices come from the calibrated roofline models.
//!
//! Usage: `fig8_e2e [--layers 2] [--tokens 16] [--threads 1|max]`

use tmac_core::ExecCtx;
use tmac_devices::{profiles, project};
use tmac_eval::Table;
use tmac_llm::{BackendKind, Engine, Model, ModelConfig, WeightQuant};

fn model_trio() -> Vec<(&'static str, ModelConfig, WeightQuant, project::ModelShape)> {
    vec![
        (
            "M1 Llama-2-7B-4bit",
            ModelConfig::llama2_7b(),
            WeightQuant::Rtn(4),
            project::LLAMA2_7B,
        ),
        (
            "M2 Llama-2-7B-2bit",
            ModelConfig::llama2_7b(),
            WeightQuant::Rtn(2),
            project::LLAMA2_7B,
        ),
        (
            "M3 BitNet-3B (ternary as 2-bit)",
            ModelConfig::bitnet_3b(),
            WeightQuant::BitnetTernary,
            project::BITNET_3B,
        ),
    ]
}

fn main() {
    let layers: usize = tmac_eval::arg("layers", "2").parse().expect("--layers");
    let tokens: usize = tmac_eval::arg("tokens", "16").parse().expect("--tokens");
    let threads_arg = tmac_eval::arg("threads", "max");
    let threads = if threads_arg == "max" {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        threads_arg.parse().expect("--threads")
    };
    let ctx = ExecCtx::new(threads);
    let (cal_tmac, cal_dequant) = tmac_eval::calibrate(&ctx);

    let mut table = Table::new(&[
        "model",
        "framework",
        "tokens/s (measured, extrapolated)",
        "speedup",
    ]);
    let mut device_table = Table::new(&[
        "model",
        "framework",
        "M2-Ultra",
        "Surface Book 3",
        "AGX Orin",
        "Raspberry Pi 5",
    ]);

    for (label, cfg, quant, shape) in model_trio() {
        let scaled = cfg.scaled(layers, 2048, 128.max(tokens + 4));
        let mut rates = Vec::new();
        for kind in [
            BackendKind::Dequant,
            BackendKind::Tmac(tmac_core::KernelOpts::tmac()),
        ] {
            let model = Model::synthetic(&scaled, quant, kind, 21).expect("model build");
            let mut engine = Engine::new(model);
            let stats = engine.measure_decode(tokens, &ctx).expect("decode");
            let full = stats.extrapolate_layers(layers, cfg.n_layers);
            rates.push(full.tokens_per_sec());
            table.row(vec![
                label.into(),
                kind.label().into(),
                format!("{:.2}", full.tokens_per_sec()),
                if rates.len() == 2 {
                    format!("{:.2}x", rates[1] / rates[0])
                } else {
                    "1.00x".into()
                },
            ]);
        }
        // Device projections.
        let bits = quant.bits();
        for (fw, cost, cal, intensity) in [
            (
                "llama.cpp",
                shape.dequant_cost(bits),
                cal_dequant,
                tmac_devices::energy::intensity::DEQUANT,
            ),
            (
                "T-MAC",
                shape.tmac_cost(bits, &tmac_core::KernelOpts::tmac()),
                cal_tmac,
                tmac_devices::energy::intensity::TMAC,
            ),
        ] {
            let _ = intensity;
            let mut cells = vec![label.into(), fw.into()];
            for dev in [
                &profiles::M2_ULTRA,
                &profiles::SURFACE_BOOK3,
                &profiles::JETSON_AGX_ORIN,
                &profiles::RASPBERRY_PI5,
            ] {
                let tps = project::cpu_tokens_per_sec(dev, &cost, dev.cores, cal, 0.25);
                cells.push(format!("{tps:.1}"));
            }
            device_table.row(cells);
        }
    }

    println!(
        "Figure 8: e2e token generation, {threads} thread(s), {layers}-layer scaled\n\
         models extrapolated to full depth\n"
    );
    table.emit(&format!("fig8_e2e_t{threads}"));
    println!("Projected tokens/s on the paper's devices (calibrated rooflines):\n");
    device_table.emit("fig8_e2e_devices");
    println!(
        "Paper reference: T-MAC reaches 71 tok/s (BitNet-3B, M2-Ultra, 8 cores) and\n\
         11 tok/s on Raspberry Pi 5; single-thread speedups 2.8x/6.7x/5.8x on RBP5,\n\
         multi-thread 1.1x/2.3x/1.7x on M2-Ultra for M1/M2/M3."
    );
}
