//! Model converter: generate/quantize a model **once** and emit a
//! container — `.tmac` (prepacked, mmap zero-copy at serve time) or
//! `.gguf` (canonical codes+scales interchange). The offline half of the
//! paper's Figure 2 pipeline as a standalone tool: every serving binary
//! (`serve_batch --model`, `edge_chat --model`) then starts from the file
//! instead of re-quantizing at startup.
//!
//! Flags:
//! * `--model 7b|13b|bitnet|tiny` — architecture preset (default `7b`)
//! * `--layers N --vocab V --seq S` — scaled-variant knobs (ignored for
//!   `tiny`)
//! * `--bits B` — RTN bit-width 1..=4 (default 2; `bitnet` forces ternary)
//! * `--seed N` — synthetic-weight seed (default 7)
//! * `--out PATH` — output file; extension picks the format
//!   (`.gguf` → GGUF, anything else → `.tmac`)
//! * `--verify` — reload the container and assert bit-identical logits
//!   against the in-memory model, then report the cold-start ratio
//! * `--threads N`

use std::path::Path;
use std::time::Instant;
use tmac_core::ExecCtx;
use tmac_llm::{BackendKind, KvCache, LoadMode, Model, ModelConfig, Scratch, WeightQuant};

fn main() {
    let model_name = tmac_eval::arg("model", "7b");
    let layers: usize = tmac_eval::arg("layers", "1").parse().expect("--layers");
    let vocab: usize = tmac_eval::arg("vocab", "64").parse().expect("--vocab");
    let seq: usize = tmac_eval::arg("seq", "128").parse().expect("--seq");
    let bits: u8 = tmac_eval::arg("bits", "2").parse().expect("--bits");
    let seed: u64 = tmac_eval::arg("seed", "7").parse().expect("--seed");
    let threads: usize = tmac_eval::arg("threads", "1").parse().expect("--threads");
    let out = tmac_eval::arg("out", "");
    let verify = std::env::args().any(|a| a == "--verify");
    if out.is_empty() {
        eprintln!("usage: tmac_convert --out model.tmac [--model 7b|13b|bitnet|tiny] [--layers N] [--bits B] [--seed N] [--verify]");
        std::process::exit(2);
    }
    let out = Path::new(&out);

    let base = match model_name.as_str() {
        "7b" => ModelConfig::llama2_7b(),
        "13b" => ModelConfig::llama2_13b(),
        "bitnet" => ModelConfig::bitnet_3b(),
        "tiny" => ModelConfig::tiny(),
        other => panic!("unknown --model {other:?} (7b|13b|bitnet|tiny)"),
    };
    let cfg = if model_name == "tiny" {
        base
    } else {
        base.scaled(layers, vocab, seq)
    };
    let quant = if model_name == "bitnet" {
        WeightQuant::BitnetTernary
    } else {
        WeightQuant::Rtn(bits)
    };
    let kind = BackendKind::Tmac(tmac_core::KernelOpts::tmac());

    println!(
        "building {} ({} layer(s), dim {}, ffn {}, {:?}, seed {seed})...",
        cfg.name, cfg.n_layers, cfg.dim, cfg.ffn_dim, quant
    );
    let t0 = Instant::now();
    let model = Model::synthetic(&cfg, quant, kind, seed).expect("build model");
    let build_s = t0.elapsed().as_secs_f64();

    let t0 = Instant::now();
    model.save_file(out).expect("save container");
    let save_s = t0.elapsed().as_secs_f64();
    let file_bytes = std::fs::metadata(out).map(|m| m.len()).unwrap_or(0);
    println!(
        "wrote {} ({:.1} MiB) — generate+quantize+pack {:.2}s, serialize {:.2}s",
        out.display(),
        file_bytes as f64 / (1024.0 * 1024.0),
        build_s,
        save_s
    );

    if verify {
        let ctx = ExecCtx::new(threads);
        let t0 = Instant::now();
        let loaded = Model::from_file(out, &kind, LoadMode::Mmap).expect("reload container");
        let load_s = t0.elapsed().as_secs_f64();
        let logits = |m: &Model| -> Vec<f32> {
            let mut cache = KvCache::new(&m.cfg);
            let mut s = Scratch::new(&m.cfg);
            for pos in 0..3 {
                m.forward(1 + pos as u32, pos, &mut cache, &mut s, &ctx)
                    .expect("forward");
            }
            s.logits.clone()
        };
        let (a, b) = (logits(&model), logits(&loaded));
        assert_eq!(a, b, "reloaded model must be bit-identical");
        println!(
            "verify ok: bit-identical logits; load {:.3}s vs build {:.2}s ({:.0}x cold-start)",
            load_s,
            build_s,
            build_s / load_s.max(1e-9)
        );
    }
}
