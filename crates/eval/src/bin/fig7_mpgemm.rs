//! Figure 7: mpGEMM (sequence length 256), llama.cpp (BLAS) vs T-MAC,
//! multi-threaded, bits 1–4, shapes S0–S5.
//!
//! The baseline is the dequantize-to-f32 + blocked SGEMM route llama.cpp
//! uses for big GEMMs ("llama.cpp uses BLAS for mpGEMM", §5.2); T-MAC runs
//! its n-blocked LUT GEMM.
//!
//! Usage: `fig7_mpgemm [--n 256] [--quick] [--iters N]`

use tmac_baseline::{sgemm, DequantLinear};
use tmac_core::ExecCtx;
use tmac_core::{KernelOpts, TmacLinear};
use tmac_eval::{make_act, make_weights, ms, quick, time_best, Table, SHAPES};

fn main() {
    let n: usize = tmac_eval::arg("n", if quick() { "64" } else { "256" })
        .parse()
        .expect("--n");
    let iters: usize = tmac_eval::arg("iters", "3").parse().expect("--iters");
    let threads = std::thread::available_parallelism()
        .map(|v| v.get())
        .unwrap_or(1);
    let ctx = ExecCtx::new(threads);
    let shapes: &[(usize, usize)] = if quick() { &SHAPES[..1] } else { &SHAPES };

    let mut table = Table::new(&[
        "shape",
        "bits",
        "llama.cpp BLAS (ms)",
        "T-MAC (ms)",
        "speedup",
    ]);
    for &(m, k) in shapes {
        let w = make_weights(m, k, 13);
        let act = make_act(n * k, 13);
        let mut out = vec![0f32; n * m];
        for bits in 1..=4u8 {
            let qm = tmac_quant::rtn::quantize(&w, m, k, bits, 32).expect("quantize");
            let tl = TmacLinear::new(&qm, KernelOpts::tmac()).expect("plan");
            let bl = DequantLinear::new(&qm).expect("pack");
            let t_tmac = time_best(
                || tl.gemm(&act, n, &mut out, &ctx).expect("tmac gemm"),
                1,
                iters,
            );
            let t_blas = time_best(
                || sgemm::gemm_blas(&bl, &act, n, &mut out, &ctx).expect("blas gemm"),
                1,
                iters,
            );
            table.row(vec![
                format!("{m}x{k}x{n}"),
                bits.to_string(),
                ms(t_blas),
                ms(t_tmac),
                format!("{:.2}x", t_blas / t_tmac),
            ]);
        }
    }
    println!("Figure 7: mpGEMM (seq len {n}), {threads} threads, local host\n");
    table.emit("fig7_mpgemm");
    println!(
        "Paper shape check: T-MAC wins on bandwidth-poor CPUs (up to 4-5.3x at\n\
         2-bit on RBP/Orin/Surface) because the BLAS route pays dequantization\n\
         plus f32 FLOPs; only a strong GEMM coprocessor (M2's AMX) closes the gap."
    );
}
