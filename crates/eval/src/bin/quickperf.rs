//! Quick performance sanity probe: T-MAC vs dequant baseline at one shape,
//! all bit-widths. Not a paper figure — a development smoke check that the
//! headline behaviour (linear bit scaling for T-MAC, flat for the baseline)
//! holds on this machine before running the full suite.

use tmac_baseline::DequantLinear;
use tmac_core::ExecCtx;
use tmac_core::{KernelOpts, TmacLinear};
use tmac_eval::{make_act, make_weights, ms, time_best, Table};

fn main() {
    let m = tmac_eval::arg("m", "4096").parse::<usize>().expect("--m");
    let k = tmac_eval::arg("k", "4096").parse::<usize>().expect("--k");
    let threads = tmac_eval::arg("threads", "1")
        .parse::<usize>()
        .expect("--threads");
    let ctx = ExecCtx::new(threads);
    let w = make_weights(m, k, 7);
    let act = make_act(k, 7);
    let mut out = vec![0f32; m];

    let mut table = Table::new(&["bits", "t-mac (ms)", "llama.cpp-like (ms)", "speedup"]);
    for bits in 1..=4u8 {
        let qm = tmac_quant::rtn::quantize(&w, m, k, bits, 32).expect("quantize");
        let tl = TmacLinear::new(&qm, KernelOpts::tmac()).expect("plan");
        let bl = DequantLinear::new(&qm).expect("pack");
        let t_tmac = time_best(|| tl.gemv(&act, &mut out, &ctx).expect("gemv"), 5, 40);
        let t_base = time_best(|| bl.gemv(&act, &mut out, &ctx).expect("gemv"), 5, 40);
        table.row(vec![
            bits.to_string(),
            ms(t_tmac),
            ms(t_base),
            format!("{:.2}x", t_base / t_tmac),
        ]);
    }
    println!("shape {m}x{k}, {threads} thread(s)\n");
    table.emit("quickperf");
}
