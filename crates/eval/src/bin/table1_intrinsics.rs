//! Table 1: hardware intrinsics for look-up and aggregation per instruction
//! set, plus what the running host dispatches to.

use tmac_eval::Table;
use tmac_simd::Isa;

fn main() {
    let mut table = Table::new(&["instruction set", "look-up", "fast aggregation", "lanes"]);
    for isa in [Isa::Neon, Isa::Avx2, Isa::Scalar] {
        table.row(vec![
            isa.name().to_uppercase(),
            isa.lookup_intrinsic().into(),
            isa.aggregation_intrinsic().into(),
            isa.lookups_per_instr().to_string(),
        ]);
    }
    println!("Table 1: look-up / aggregation intrinsics per ISA\n");
    table.emit("table1_intrinsics");
    let active = Isa::detect();
    println!(
        "Active backend on this host: {} ({} parallel 8-bit lookups per instruction)",
        active.name(),
        active.lookups_per_instr()
    );
}
