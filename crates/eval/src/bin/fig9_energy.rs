//! Figure 9: power (W) and energy (J/token) for multi-threaded inference on
//! M2-Ultra — M1 = Llama-2-7B-4bit, M2 = Llama-2-7B-2bit, M3 = BitNet-3B.
//!
//! Power comes from the instruction-mix model in `tmac_devices::energy`
//! (substituting the paper's `powermetrics` sampling); throughput comes from
//! the calibrated device projection. Energy = power / throughput.
//!
//! Usage: `fig9_energy`

use tmac_core::ExecCtx;
use tmac_devices::energy::{self, intensity};
use tmac_devices::{profiles, project};
use tmac_eval::Table;

fn main() {
    let ctx = ExecCtx::new(
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    );
    let (cal_tmac, cal_dequant) = tmac_eval::calibrate(&ctx);
    let dev = &profiles::M2_ULTRA;
    let threads = 8; // the paper's multi-threaded M2-Ultra setting

    // Paper-measured references for the shape check.
    let paper = [
        ("M1 Llama-2-7B-4bit", 4u8, project::LLAMA2_7B, 20.6),
        ("M2 Llama-2-7B-2bit", 2u8, project::LLAMA2_7B, 61.2),
        ("M3 BitNet-3B", 2u8, project::BITNET_3B, 51.3),
    ];

    let mut table = Table::new(&[
        "model",
        "framework",
        "tokens/s",
        "power (W)",
        "energy (J/token)",
        "energy saving",
    ]);
    for (label, bits, shape, paper_saving) in paper {
        let base_cost = shape.dequant_cost(bits);
        let tmac_cost = shape.tmac_cost(bits, &tmac_core::KernelOpts::tmac());
        let tps_base = project::cpu_tokens_per_sec(dev, &base_cost, threads, cal_dequant, 0.25);
        let tps_tmac = project::cpu_tokens_per_sec(dev, &tmac_cost, threads, cal_tmac, 0.25);
        let p_base = energy::cpu_power_w(dev, threads, intensity::DEQUANT);
        let p_tmac = energy::cpu_power_w(dev, threads, intensity::TMAC);
        let e_base = energy::joules_per_token(p_base, tps_base);
        let e_tmac = energy::joules_per_token(p_tmac, tps_tmac);
        table.row(vec![
            label.into(),
            "llama.cpp".into(),
            format!("{tps_base:.1}"),
            format!("{p_base:.1}"),
            format!("{e_base:.2}"),
            String::new(),
        ]);
        table.row(vec![
            label.into(),
            "T-MAC".into(),
            format!("{tps_tmac:.1}"),
            format!("{p_tmac:.1}"),
            format!("{e_tmac:.2}"),
            format!(
                "{:.1}% (paper: {paper_saving:.1}%)",
                100.0 * (1.0 - e_tmac / e_base)
            ),
        ]);
    }
    println!("Figure 9: power & energy on M2-Ultra (modelled, 8 threads)\n");
    table.emit("fig9_energy");
    println!(
        "Paper shape check: T-MAC draws 10.3-17.3% less package power at equal\n\
         threads and cuts energy 20.6%/61.2%/51.3% for M1/M2/M3 (latency gain\n\
         times power gain)."
    );
}
