//! Figure 11: mpGEMV kernels, T-MAC (CPU) vs llama.cpp (GPU), on Jetson AGX
//! Orin, shapes 4096x4096 / 11008x4096 / 4096x11008, bits 1–4.
//!
//! The GPU side is the bandwidth + launch-overhead model of the CUDA dequant
//! kernels; the CPU side is the calibrated T-MAC roofline. Local measured
//! CPU numbers are printed alongside for grounding.
//!
//! Usage: `fig11_gpu [--iters N]`

use tmac_core::ExecCtx;
use tmac_core::{KernelOpts, TmacLinear};
use tmac_devices::{profiles, project};
use tmac_eval::{make_act, make_weights, ms, time_best, Table, SHAPES};

fn main() {
    let iters: usize = tmac_eval::arg("iters", "10").parse().expect("--iters");
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let ctx = ExecCtx::new(threads);
    let (cal_tmac, _) = tmac_eval::calibrate(&ctx);

    let mut table = Table::new(&[
        "shape",
        "bits",
        "GPU model (ms)",
        "T-MAC Orin model (ms)",
        "T-MAC local measured (ms)",
        "CPU/GPU",
    ]);
    for &(m, k) in &SHAPES[..3] {
        let w = make_weights(m, k, 23);
        let act = make_act(k, 23);
        let mut out = vec![0f32; m];
        for bits in 1..=4u8 {
            let qm = tmac_quant::rtn::quantize(&w, m, k, bits, 32).expect("quantize");
            let tl = TmacLinear::new(&qm, KernelOpts::tmac()).expect("plan");
            let measured = time_best(|| tl.gemv(&act, &mut out, &ctx).expect("gemv"), 2, iters);
            let weight_bytes = (m * k) as u64 * bits as u64 / 8 + (m * k / 32 * 4) as u64;
            let t_gpu = project::gpu_latency(&profiles::ORIN_AGX_GPU, weight_bytes);
            let cost =
                tmac_core::cost::tmac_gemv_cost(m, k, bits as usize, 32, &KernelOpts::tmac());
            let t_cpu = project::cpu_latency(&profiles::JETSON_AGX_ORIN, &cost, 12, cal_tmac);
            table.row(vec![
                format!("{m}x{k}"),
                bits.to_string(),
                ms(t_gpu),
                ms(t_cpu),
                ms(measured),
                format!("{:.2}x", t_gpu / t_cpu),
            ]);
        }
    }
    println!("Figure 11: T-MAC CPU vs llama.cpp GPU mpGEMV on Jetson AGX Orin\n");
    table.emit("fig11_gpu");
    println!(
        "Paper shape check: T-MAC CPU beats the GPU at 1-bit everywhere, matches\n\
         it at 2-3 bits, and loses at 4-bit/large shapes where the GPU's bandwidth\n\
         advantage dominates (CPU/GPU > 1 means the CPU is faster)."
    );
}
