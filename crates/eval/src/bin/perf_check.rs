//! CI perf gate: compares a measured-metrics JSON (written by the bench
//! harness, e.g. `benches/batched_decode.rs` under `TMAC_PERF_OUT`) against
//! checked-in thresholds and exits non-zero on regression.
//!
//! Thresholds are *ratios*, not absolute times, so shared-runner noise does
//! not flake the gate: each `min_<metric>` / `max_<metric>` key in the
//! thresholds file is checked against `<metric>` in the measured file.
//! Checked-in values carry ~2x slack below locally measured speedups (e.g.
//! `min_speedup_b16 = 0.55` against a measured ~1.1x) — the gate catches
//! collapse regressions such as batched serving dropping to half of
//! sequential throughput, not percent-level drift. The `min_*_tok_s = 1.0`
//! entries are deliberate liveness floors (the bench really produced
//! tokens), not tracked performance numbers; keep real perf tracking on
//! ratio metrics only.
//!
//! Usage: `perf_check <measured.json> <thresholds.json>`

use std::process::ExitCode;
// The flat-JSON codec lives in `tmac_bench` so the merge-writer
// (`write_perf_out`) and this gate share one definition of the format.
use tmac_bench::parse_flat_json;

fn load(path: &str) -> Result<Vec<(String, f64)>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    parse_flat_json(&text).map_err(|e| format!("parse {path}: {e}"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    if args.len() != 3 {
        eprintln!("usage: perf_check <measured.json> <thresholds.json>");
        return ExitCode::FAILURE;
    }
    let (measured, thresholds) = match (load(&args[1]), load(&args[2])) {
        (Ok(m), Ok(t)) => (m, t),
        (m, t) => {
            for e in [m.err(), t.err()].into_iter().flatten() {
                eprintln!("perf_check: {e}");
            }
            return ExitCode::FAILURE;
        }
    };
    let get = |key: &str| measured.iter().find(|(k, _)| k == key).map(|(_, v)| *v);

    let mut failures = 0;
    for (key, bound) in &thresholds {
        let (metric, is_min) = if let Some(m) = key.strip_prefix("min_") {
            (m, true)
        } else if let Some(m) = key.strip_prefix("max_") {
            (m, false)
        } else {
            eprintln!("perf_check: FAIL threshold key {key:?} must start with min_/max_");
            failures += 1;
            continue;
        };
        let Some(value) = get(metric) else {
            eprintln!("perf_check: FAIL {metric}: missing from measured metrics");
            failures += 1;
            continue;
        };
        let ok = if is_min {
            value >= *bound
        } else {
            value <= *bound
        };
        let verdict = if ok { "ok  " } else { "FAIL" };
        let op = if is_min { ">=" } else { "<=" };
        println!("perf_check: {verdict} {metric} = {value:.4} (want {op} {bound})");
        if !ok {
            failures += 1;
        }
    }
    if failures > 0 {
        eprintln!("perf_check: {failures} check(s) failed");
        return ExitCode::FAILURE;
    }
    println!("perf_check: all {} checks passed", thresholds.len());
    ExitCode::SUCCESS
}
