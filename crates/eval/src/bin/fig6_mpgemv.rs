//! Figure 6: mpGEMV latency, llama.cpp vs T-MAC, bits 1–4, shapes S0–S5.
//!
//! Measures both kernels on the local host (single- or multi-threaded per
//! `--threads`), then prints the paper-shape summary: per (shape, bits) the
//! latency of each system and the speedup. The paper's dashed 1-bit
//! llama.cpp line is *deduced from 2-bit*; this reproduction also measures a
//! real 1-bit dequant kernel and prints both.
//!
//! Usage: `fig6_mpgemv [--threads 1|max|N] [--quick] [--iters N]`

use tmac_baseline::DequantLinear;
use tmac_core::ExecCtx;
use tmac_core::{KernelOpts, TmacLinear};
use tmac_eval::{make_act, make_weights, ms, quick, time_best, Table, SHAPES};

fn main() {
    let threads_arg = tmac_eval::arg("threads", "1");
    let threads = if threads_arg == "max" {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        threads_arg.parse().expect("--threads")
    };
    let iters: usize = tmac_eval::arg("iters", "15").parse().expect("--iters");
    let ctx = ExecCtx::new(threads);
    let shapes: &[(usize, usize)] = if quick() { &SHAPES[..2] } else { &SHAPES };

    let mut table = Table::new(&[
        "shape",
        "bits",
        "llama.cpp (ms)",
        "T-MAC (ms)",
        "speedup",
        "note",
    ]);
    for &(m, k) in shapes {
        let w = make_weights(m, k, 11);
        let act = make_act(k, 11);
        let mut out = vec![0f32; m];
        for bits in 1..=4u8 {
            let qm = tmac_quant::rtn::quantize(&w, m, k, bits, 32).expect("quantize");
            let tl = TmacLinear::new(&qm, KernelOpts::tmac()).expect("plan");
            let bl = DequantLinear::new(&qm).expect("pack");
            let t_tmac = time_best(
                || tl.gemv(&act, &mut out, &ctx).expect("tmac gemv"),
                3,
                iters,
            );
            let t_base = time_best(
                || bl.gemv(&act, &mut out, &ctx).expect("base gemv"),
                3,
                iters,
            );
            table.row(vec![
                format!("{m}x{k}"),
                bits.to_string(),
                ms(t_base),
                ms(t_tmac),
                format!("{:.2}x", t_base / t_tmac),
                // llama.cpp has no 1-bit kernel; the paper deduces its 1-bit
                // line from 2-bit, whereas this baseline really measures one.
                if bits == 1 {
                    "measured (paper deduces from 2-bit)"
                } else {
                    ""
                }
                .into(),
            ]);
        }
    }
    println!(
        "Figure 6 ({}) mpGEMV latency, {threads} thread(s), local x86-64 AVX2 host\n",
        if threads == 1 {
            "a: single-thread"
        } else {
            "b: multi-thread"
        }
    );
    table.emit(&format!("fig6_mpgemv_t{threads}"));
    println!(
        "Paper shape check: T-MAC scales ~linearly with bits; llama.cpp stays flat\n\
         with its worst case at 3-bit (split 2+1 decode). Paper reports T-MAC\n\
         single-thread speedups up to 11.2x/5.8x/4.7x/3.1x at 1/2/3/4 bits on ARM\n\
         devices; AVX2 hosts sit at the low end of that range."
    );
}
