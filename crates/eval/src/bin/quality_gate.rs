//! Standing model-quality gate: teacher-forced perplexity and agreement of
//! the T-MAC backend against the un-quantized reference, evaluated through
//! `Model::forward_batch` — the same code path the serving scheduler uses,
//! so the gate measures the quality of what actually gets served.
//!
//! Metrics are merge-written into `TMAC_PERF_OUT` (same flat-JSON file the
//! bench harness uses) so CI can gate them with
//! `perf_check <measured.json> results/quality_thresholds.json`:
//!
//! - `quality_ppl_ratio`     — T-MAC perplexity / reference perplexity
//! - `quality_agreement_pct` — % of generated positions where the T-MAC
//!   argmax reproduces the reference teacher token
//! - `quality_positions`     — scored positions (liveness floor)
//!
//! `batched_quality` is bit-identical at every `max_batch` and thread
//! count, so the gate is deterministic on any runner. `--bits 1` degrades
//! the weights far past the thresholds — CI runs it to prove the gate
//! actually fails on a quality regression.
//!
//! Usage: `quality_gate [--bits 4] [--seqs 6] [--len 32] [--batch 4]
//!         [--threads 2] [--quick]`

use tmac_core::ExecCtx;
use tmac_llm::{
    eval as quality, BackendKind, Engine, KvPrecision, Model, ModelConfig, WeightQuant,
};

fn main() {
    let bits: u8 = tmac_eval::arg("bits", "4").parse().expect("--bits");
    let quick = tmac_eval::quick();
    let dim: usize = tmac_eval::arg("dim", if quick { "256" } else { "512" })
        .parse()
        .expect("--dim");
    let layers: usize = tmac_eval::arg("layers", if quick { "2" } else { "4" })
        .parse()
        .expect("--layers");
    let n_seqs: usize = tmac_eval::arg("seqs", if quick { "4" } else { "6" })
        .parse()
        .expect("--seqs");
    let len: usize = tmac_eval::arg("len", if quick { "20" } else { "32" })
        .parse()
        .expect("--len");
    let batch: usize = tmac_eval::arg("batch", "4").parse().expect("--batch");
    let threads: usize = tmac_eval::arg("threads", "2").parse().expect("--threads");
    let ctx = ExecCtx::new(threads);

    let cfg = ModelConfig {
        name: format!("quality-gate-{dim}d{layers}L"),
        dim,
        n_layers: layers,
        n_heads: (dim / 64).max(1),
        n_kv_heads: (dim / 64).max(1),
        ffn_dim: dim * 11 / 4 / 32 * 32,
        vocab: 1024,
        seq_max: 128,
        rope_theta: 10000.0,
        kv_precision: KvPrecision::F32,
    };
    cfg.validate().expect("config");

    // Reference model generates the teacher sequences and sets the
    // perplexity denominator (same seeds as `table4_quality`).
    let reference =
        Model::synthetic(&cfg, WeightQuant::Rtn(4), BackendKind::F32, 77).expect("ref model");
    let mut ref_engine = Engine::new(reference.clone());
    let seqs =
        quality::teacher_sequences(&mut ref_engine, n_seqs, len, 5, &ctx).expect("sequences");

    let candidate = Model::synthetic(
        &cfg,
        WeightQuant::Rtn(bits),
        BackendKind::Tmac(tmac_core::KernelOpts::tmac()),
        77,
    )
    .expect("candidate model");

    // Prompt length 2 matches `teacher_sequences` (2 random prompt tokens,
    // then greedy continuation): agreement scores only generated positions.
    let ref_report = quality::batched_quality(&reference, &seqs, 2, batch, &ctx).expect("ref eval");
    let report = quality::batched_quality(&candidate, &seqs, 2, batch, &ctx).expect("eval");
    let ppl_ratio = report.perplexity / ref_report.perplexity;

    println!(
        "quality_gate: {} bits={bits} ({} seqs x {} tokens, batch {batch}, {threads} threads)",
        cfg.name, n_seqs, len
    );
    println!(
        "  reference : ppl {:.4}  agreement {:.1}%  positions {}",
        ref_report.perplexity, ref_report.agreement_pct, ref_report.positions
    );
    println!(
        "  T-MAC     : ppl {:.4}  agreement {:.1}%  positions {}",
        report.perplexity, report.agreement_pct, report.positions
    );
    println!("  ppl ratio : {ppl_ratio:.4}");

    if let Ok(path) = std::env::var("TMAC_PERF_OUT") {
        tmac_bench::write_perf_out(
            &path,
            &[
                ("quality_ppl_ratio", ppl_ratio),
                ("quality_agreement_pct", report.agreement_pct),
                ("quality_positions", report.positions as f64),
            ],
        );
    }
}
