//! Table 4: end-to-end throughput and model quality (perplexity + choice
//! accuracy) for the un-quantized reference, llama.cpp, T-MAC, and
//! T-MAC (+FA), single-threaded.
//!
//! Quality substitutes synthetic evaluations for WikiText-2 / lambada /
//! WinoGrande (see DESIGN.md): teacher-forced perplexity on reference-model
//! output, and two-way choice agreement with the reference.
//!
//! Usage: `table4_quality [--dim 512] [--layers 4] [--seqs 4] [--len 24]`

use tmac_core::ExecCtx;
use tmac_eval::Table;
use tmac_llm::{
    eval as quality, BackendKind, Engine, KvPrecision, Model, ModelConfig, WeightQuant,
};

fn main() {
    let dim: usize = tmac_eval::arg("dim", "512").parse().expect("--dim");
    let layers: usize = tmac_eval::arg("layers", "4").parse().expect("--layers");
    let n_seqs: usize = tmac_eval::arg("seqs", "4").parse().expect("--seqs");
    let len: usize = tmac_eval::arg("len", "24").parse().expect("--len");
    let tasks: usize = tmac_eval::arg("tasks", "40").parse().expect("--tasks");
    let ctx = ExecCtx::new(1); // paper Table 4 is single-thread

    let cfg = ModelConfig {
        name: format!("mini-llama-{dim}d{layers}L"),
        dim,
        n_layers: layers,
        n_heads: (dim / 64).max(1),
        n_kv_heads: (dim / 64).max(1),
        ffn_dim: dim * 11 / 4 / 32 * 32,
        vocab: 1024,
        seq_max: 128,
        rope_theta: 10000.0,
        kv_precision: KvPrecision::F32,
    };
    cfg.validate().expect("config");

    let backends: Vec<(&str, BackendKind)> = vec![
        ("Un-quantized", BackendKind::F32),
        ("llama.cpp", BackendKind::Dequant),
        ("T-MAC", BackendKind::Tmac(tmac_core::KernelOpts::tmac())),
        (
            "T-MAC (+FA)",
            BackendKind::Tmac(tmac_core::KernelOpts::tmac_fast_aggregation()),
        ),
    ];

    // Reference model and evaluation data.
    let mut reference = Engine::new(
        Model::synthetic(&cfg, WeightQuant::Rtn(4), BackendKind::F32, 77).expect("ref model"),
    );
    let seqs = quality::teacher_sequences(&mut reference, n_seqs, len, 5, &ctx).expect("sequences");

    let mut table = Table::new(&[
        "framework",
        "tokens/s",
        "PPL (synthetic LM)",
        "choice acc. (%)",
        "paper (7B: tok/s, WikiText2 PPL, WinoGrande acc)",
    ]);
    let paper_rows = [
        "3.79, 5.80, 71.0",
        "5.65, 5.96, 70.8",
        "7.34, 5.96, 70.8",
        "8.97, 6.38, 67.8",
    ];
    for ((label, kind), paper) in backends.into_iter().zip(paper_rows) {
        let model = Model::synthetic(&cfg, WeightQuant::Rtn(4), kind, 77).expect("model");
        let mut engine = Engine::new(model);
        let stats = engine.measure_decode(16, &ctx).expect("decode");
        let ppl = quality::perplexity(&mut engine, &seqs, &ctx).expect("ppl");
        let acc = quality::choice_agreement(&mut reference, &mut engine, tasks, 9, &ctx)
            .expect("agreement");
        table.row(vec![
            label.into(),
            format!("{:.2}", stats.tokens_per_sec()),
            format!("{ppl:.3}"),
            format!("{acc:.1}"),
            paper.into(),
        ]);
    }
    println!(
        "Table 4: throughput and quality, {} ({}d x {}L, vocab {}), 1 thread\n",
        cfg.name, dim, layers, cfg.vocab
    );
    table.emit("table4_quality");
    println!(
        "Paper shape check: T-MAC matches llama.cpp's quality exactly at higher\n\
         throughput; fast aggregation buys more speed at a visible quality cost\n\
         (paper: PPL 5.96 -> 6.38, accuracy 70.8 -> 67.8)."
    );
}
