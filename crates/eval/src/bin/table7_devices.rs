//! Table 7: token-generation throughput, T-MAC (CPU) vs llama.cpp (CPU),
//! llama.cpp (GPU) and NPU, for Llama-2-7B 4-bit and 2-bit on
//! Surface Laptop 7, OnePlus 12 and Jetson Orin NX.
//!
//! CPU/GPU columns come from the calibrated device models; NPU columns are
//! the official Qualcomm AI Hub numbers the paper itself uses (2-bit NPU
//! deduced from 4-bit, marked `*`, as in the paper).

use tmac_core::ExecCtx;
use tmac_devices::{profiles, project};
use tmac_eval::Table;

fn main() {
    let ctx = ExecCtx::new(
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    );
    let (cal_tmac, cal_dequant) = tmac_eval::calibrate(&ctx);
    let shape = project::LLAMA2_7B;

    struct DeviceRow {
        cpu: &'static profiles::CpuProfile,
        gpu: Option<&'static profiles::GpuProfile>,
        npu: Option<&'static profiles::NpuProfile>,
        paper: [&'static str; 2], // 4-bit row, 2-bit row
    }
    let devices = [
        DeviceRow {
            cpu: &profiles::SURFACE_LAPTOP7,
            gpu: None,
            npu: Some(&profiles::HEXAGON_X_ELITE),
            paper: ["21.63 / 10.64 / - / 10.40", "31.83 / 9.39 / - / 10.40*"],
        },
        DeviceRow {
            cpu: &profiles::ONEPLUS_12,
            gpu: Some(&profiles::ADRENO_750_GPU),
            npu: Some(&profiles::HEXAGON_8GEN3),
            paper: [
                "10.19 / 8.24 / 1.60 / 11.30",
                "16.62 / 6.95 / 1.72 / 11.30*",
            ],
        },
        DeviceRow {
            cpu: &profiles::JETSON_ORIN_NX,
            gpu: Some(&profiles::ORIN_NX_GPU),
            npu: None,
            paper: ["7.53 / 3.97 / 14.76 / -", "11.41 / 3.20 / 7.94 / -"],
        },
    ];

    let mut table = Table::new(&[
        "device",
        "model",
        "T-MAC CPU",
        "llama.cpp CPU",
        "llama.cpp GPU",
        "NPU",
        "paper (same order)",
    ]);
    for row in &devices {
        for (bi, bits) in [4u8, 2u8].iter().enumerate() {
            let tmac = project::cpu_tokens_per_sec(
                row.cpu,
                &shape.tmac_cost(*bits, &tmac_core::KernelOpts::tmac()),
                row.cpu.cores,
                cal_tmac,
                0.25,
            );
            let base = project::cpu_tokens_per_sec(
                row.cpu,
                &shape.dequant_cost(*bits),
                row.cpu.cores,
                cal_dequant,
                0.25,
            );
            let gpu = row
                .gpu
                .map(|g| format!("{:.2}", project::gpu_tokens_per_sec(g, &shape, *bits)))
                .unwrap_or_else(|| "-".into());
            let npu = row
                .npu
                .map(|n| {
                    let v = project::npu_tokens_per_sec(n, *bits);
                    if *bits == 2 {
                        format!("{v:.2}*")
                    } else {
                        format!("{v:.2}")
                    }
                })
                .unwrap_or_else(|| "-".into());
            table.row(vec![
                row.cpu.name.into(),
                format!("Llama-2-7B-{bits}bit"),
                format!("{tmac:.2}"),
                format!("{base:.2}"),
                gpu,
                npu,
                row.paper[bi].into(),
            ]);
        }
    }
    println!("Table 7: tokens/s, T-MAC vs CPU/GPU/NPU baselines (modelled)\n");
    table.emit("table7_devices");
    println!(
        "Paper shape check: T-MAC beats the NPU at 2-bit on both Snapdragon\n\
         devices (3x on Surface Laptop 7 with 4 cores), crushes the Adreno\n\
         OpenCL backend, and approaches the Orin NX GPU at 2-bit.\n\
         (* = 2-bit NPU deduced from 4-bit, as in the paper.)"
    );
}
