//! Batched-serving throughput sweep: aggregate tokens/sec of the
//! continuous-batching scheduler as the batch size grows, against the
//! sequential single-stream baseline on the same model.
//!
//! Not a paper figure — the serving-scenario extension of the reproduction
//! (ROADMAP "heavy traffic"): it answers "how much does continuous batching
//! buy on this host" the way `quickperf` answers it for raw kernels. The
//! measurement loops are shared with `benches/batched_decode.rs` through
//! `tmac_eval::serving` so the two report comparable numbers.
//!
//! Flags: `--model 7b|13b|bitnet|tiny|<path>` (a path to a `.tmac`/`.gguf`
//! container serves from the file — the convert-once → serve-many
//! workflow), `--save-model <path>` (persist the synthetic model before
//! serving), `--backend <registry name>` (container loads only; resolved
//! through `BackendRegistry`), `--layers N`, `--bits B`, `--streams S`,
//! `--prompt P`, `--tokens T`, `--threads N`, `--kv f32|i8` (KV-cache
//! precision; `i8` quantizes the cache and serves attention on the fused
//! streaming kernels), `--quick`.

use tmac_core::ExecCtx;
use tmac_eval::serving::{batched_tok_s, sequential_tok_s, ServeWorkload};
use tmac_eval::Table;
use tmac_llm::{
    BackendKind, BackendRegistry, KvPrecision, LoadMode, Model, ModelConfig, WeightQuant,
};

fn main() {
    let model_name = tmac_eval::arg("model", "7b");
    let layers: usize = tmac_eval::arg("layers", "1").parse().expect("--layers");
    let bits: u8 = tmac_eval::arg("bits", "2").parse().expect("--bits");
    let threads: usize = tmac_eval::arg("threads", "1").parse().expect("--threads");
    let quick = tmac_eval::quick();
    let streams: usize = tmac_eval::arg("streams", if quick { "8" } else { "16" })
        .parse()
        .expect("--streams");
    let prompt_len: usize = tmac_eval::arg("prompt", "4").parse().expect("--prompt");
    let n_new: usize = tmac_eval::arg("tokens", if quick { "4" } else { "16" })
        .parse()
        .expect("--tokens");
    let save_model = tmac_eval::arg("save-model", "");

    let kv = match tmac_eval::arg("kv", "f32").as_str() {
        "f32" => KvPrecision::F32,
        "i8" => KvPrecision::I8,
        other => panic!("unknown --kv {other:?} (f32|i8)"),
    };

    let from_file = ["tmac", "gguf"]
        .iter()
        .any(|ext| model_name.ends_with(&format!(".{ext}")));
    let (mut model, quant) = if from_file {
        // Serve straight from a container: mmap-prepacked load, backend
        // resolved by registry name so custom backends plug in here too.
        let backend = tmac_eval::arg("backend", "tmac");
        let builder = BackendRegistry::with_defaults()
            .get(&backend)
            .unwrap_or_else(|| panic!("unknown --backend {backend:?}"));
        let t0 = std::time::Instant::now();
        let model = Model::from_file(
            std::path::Path::new(&model_name),
            builder.as_ref(),
            LoadMode::Mmap,
        )
        .expect("load model container");
        println!(
            "loaded {} from {model_name} in {:.3}s ({} backend)\n",
            model.cfg.name,
            t0.elapsed().as_secs_f64(),
            model.backend_label()
        );
        let quant = model.quant;
        (model, quant)
    } else {
        let base = match model_name.as_str() {
            "7b" => ModelConfig::llama2_7b(),
            "13b" => ModelConfig::llama2_13b(),
            "bitnet" => ModelConfig::bitnet_3b(),
            "tiny" => ModelConfig::tiny(),
            other => panic!("unknown --model {other:?} (7b|13b|bitnet|tiny|<path>)"),
        };
        let seq_max = (prompt_len + n_new + 8).next_power_of_two().max(64);
        let cfg = if model_name == "tiny" {
            base
        } else {
            base.scaled(layers, 64, seq_max)
        };
        let quant = if model_name == "bitnet" {
            WeightQuant::BitnetTernary
        } else {
            WeightQuant::Rtn(bits)
        };
        let model = Model::synthetic(
            &cfg,
            quant,
            BackendKind::Tmac(tmac_core::KernelOpts::tmac()),
            7,
        )
        .expect("model");
        (model, quant)
    };
    // The KV-precision knob applies to either source.
    model.cfg.kv_precision = kv;
    let cfg = model.cfg.clone();
    // A container carries a fixed seq_max (the synthetic path auto-sizes
    // it): fail up front with a capacity message instead of asserting
    // deep in the KV cache mid-benchmark.
    if prompt_len + n_new > cfg.seq_max {
        eprintln!(
            "serve_batch: --prompt {prompt_len} + --tokens {n_new} exceeds the model's seq_max \
             {} — re-convert with a larger --seq or shrink the workload",
            cfg.seq_max
        );
        std::process::exit(2);
    }
    if !save_model.is_empty() {
        model
            .save_file(std::path::Path::new(&save_model))
            .expect("save model container");
        println!("saved model to {save_model}\n");
    }
    let ctx = ExecCtx::new(threads);
    let w = ServeWorkload {
        streams,
        prompt_len,
        n_new,
    };

    let seq_tok_s = sequential_tok_s(&model, &w, &ctx);
    let mut table = Table::new(&["batch", "tok/s (aggregate)", "vs sequential"]);
    table.row(vec![
        "seq".into(),
        format!("{seq_tok_s:.1}"),
        "1.00x".into(),
    ]);
    for max_batch in [1usize, 2, 4, 8, 16] {
        if max_batch > streams {
            break;
        }
        let tok_s = batched_tok_s(&model, &w, max_batch, &ctx);
        table.row(vec![
            format!("B={max_batch}"),
            format!("{tok_s:.1}"),
            format!("{:.2}x", tok_s / seq_tok_s),
        ]);
    }
    println!(
        "serving {} ({} layer(s), {:?}, {}), {} streams x ({} prompt + {} new), {} thread(s)\n",
        cfg.name,
        cfg.n_layers,
        quant,
        kv.label(),
        streams,
        prompt_len,
        n_new,
        threads
    );
    table.emit("serve_batch");
}
