//! Table 5: Llama-2-7B-2bit end-to-end throughput, power and energy on
//! NVIDIA Jetson AGX Orin — llama.cpp (CPU), llama.cpp (GPU), T-MAC (CPU).
//!
//! All three columns come from the calibrated device models (the physical
//! board is unavailable; substitution documented in DESIGN.md). Paper
//! measurements are printed alongside.

use tmac_core::ExecCtx;
use tmac_devices::energy::{self, intensity};
use tmac_devices::{profiles, project};
use tmac_eval::Table;

fn main() {
    let ctx = ExecCtx::new(
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    );
    let (cal_tmac, cal_dequant) = tmac_eval::calibrate(&ctx);
    let dev = &profiles::JETSON_AGX_ORIN;
    let shape = project::LLAMA2_7B;
    let bits = 2u8;

    let cpu_base_tps =
        project::cpu_tokens_per_sec(dev, &shape.dequant_cost(bits), dev.cores, cal_dequant, 0.25);
    let tmac_tps = project::cpu_tokens_per_sec(
        dev,
        &shape.tmac_cost(bits, &tmac_core::KernelOpts::tmac()),
        dev.cores,
        cal_tmac,
        0.25,
    );
    let gpu_tps = project::gpu_tokens_per_sec(&profiles::ORIN_AGX_GPU, &shape, bits);

    let p_cpu_base = energy::cpu_power_w(dev, dev.cores, intensity::DEQUANT);
    let p_tmac = energy::cpu_power_w(dev, dev.cores, intensity::TMAC);
    let p_gpu = energy::gpu_power_w(&profiles::ORIN_AGX_GPU);

    let mut table = Table::new(&[
        "framework",
        "tokens/s",
        "power (W)",
        "J/token",
        "paper (tok/s, W, J/token)",
    ]);
    for (name, tps, p, paper) in [
        (
            "llama.cpp (CPU)",
            cpu_base_tps,
            p_cpu_base,
            "7.08, 15.0, 2.12",
        ),
        ("llama.cpp (GPU)", gpu_tps, p_gpu, "20.03, 30.8, 1.54"),
        ("T-MAC (CPU)", tmac_tps, p_tmac, "15.62, 10.4, 0.66"),
    ] {
        table.row(vec![
            name.into(),
            format!("{tps:.2}"),
            format!("{p:.1}"),
            format!("{:.2}", energy::joules_per_token(p, tps)),
            paper.into(),
        ]);
    }
    println!("Table 5: Llama-2-7B-2bit on Jetson AGX Orin (modelled)\n");
    table.emit("table5_orin");
    println!(
        "Paper shape check: the GPU leads raw throughput, T-MAC doubles the CPU\n\
         baseline at two-thirds of its power, and T-MAC wins energy per token\n\
         outright (paper: 0.66 vs 1.54 vs 2.12 J/token)."
    );
}
