//! Figure 10: optimization breakdown — the cumulative ladder
//! `TM-base → +TQ → +Tiling → +Perm. → +Tuning → T-MAC → TM+FA`
//! on the Figure 6 shapes (S0–S5), with the llama.cpp baseline as the
//! reference line.
//!
//! Usage: `fig10_breakdown [--bits 4] [--threads max] [--quick]`

use tmac_baseline::DequantLinear;
use tmac_core::ExecCtx;
use tmac_core::{gemv, KernelOpts, WeightPlan};
use tmac_eval::{make_act, make_weights, ms, quick, time_best, Table, SHAPES};

fn main() {
    let bits: u8 = tmac_eval::arg("bits", "4").parse().expect("--bits");
    let threads_arg = tmac_eval::arg("threads", "max");
    let threads = if threads_arg == "max" {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        threads_arg.parse().expect("--threads")
    };
    let iters: usize = tmac_eval::arg("iters", "10").parse().expect("--iters");
    let ctx = ExecCtx::new(threads);
    let shapes: &[(usize, usize)] = if quick() { &SHAPES[..2] } else { &SHAPES };

    let ladder = KernelOpts::breakdown_ladder();
    let mut headers: Vec<&str> = vec!["shape", "llama.cpp"];
    for (name, _) in &ladder {
        headers.push(name);
    }
    let mut table = Table::new(&headers);

    for (si, &(m, k)) in shapes.iter().enumerate() {
        let w = make_weights(m, k, 17);
        let act = make_act(k, 17);
        let mut out = vec![0f32; m];
        let qm = tmac_quant::rtn::quantize(&w, m, k, bits, 32).expect("quantize");
        let bl = DequantLinear::new(&qm).expect("pack");
        let t_base = time_best(|| bl.gemv(&act, &mut out, &ctx).expect("gemv"), 3, iters);
        let mut cells = vec![format!("S{si} {m}x{k}"), ms(t_base)];
        for (_, opts) in &ladder {
            let plan = WeightPlan::new(&qm, *opts).expect("plan");
            let t = time_best(
                || gemv::mpgemv(&plan, &act, &mut out, &ctx).expect("gemv"),
                2,
                iters,
            );
            cells.push(ms(t));
        }
        table.row(cells);
    }
    println!("Figure 10: optimization breakdown, {bits}-bit GEMV, {threads} threads (ms)\n");
    table.emit("fig10_breakdown");
    println!(
        "Paper shape check: TM-base lands at or below the llama.cpp line; +TQ\n\
         makes it competitive; tiling/permutation/tuning/IL each buy more (paper:\n\
         1.45x, 1.39x, device-dependent, 1.42x). FA is a lossy opt-in: it helps\n\
         on NEON's half-throughput int16 pipes and can regress on AVX2."
    );
}
