//! `load_gen` — open-loop load generator and serving perf gate.
//!
//! Two phases against a `tmac-serve` instance (in-process over a tiny
//! synthetic model by default, or an external `--addr`):
//!
//! 1. **Bursty multi-tenant replay** — `--tenants` independent clients
//!    each fire bursts of `--burst` requests with randomized gaps (seeded,
//!    reproducible). Each tenant is one sequential HTTP client over a
//!    persistent keep-alive connection (streaming responses are SSE and
//!    close-delimited, so those open their own connection). Requests mix
//!    SSE streaming and plain JSON; `--temperature`/`--seed` add sampled
//!    decoding (default stays greedy so perf gates are comparable).
//!    Reports client-side p50/p99 latency, streaming TTFT, goodput
//!    (completed tokens/sec of wall time), and shed (429) counts.
//! 2. **Saturation ratio** (in-process only) — all `--streams` requests at
//!    once; the makespan is compared against driving the `Scheduler`
//!    directly on the identical workload (`served_vs_direct`), charging the
//!    whole HTTP/bridge stack against raw scheduler throughput.
//!
//! With `TMAC_PERF_OUT=path.json` the metrics merge into the shared CI
//! perf file gated by `perf_check` (`min_served_vs_direct`,
//! `min_served_goodput_tok_s`). `--assert` additionally exits non-zero on
//! any 5xx, wedged request, or zero goodput. `--quick` shrinks everything
//! for CI.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};
use tmac_core::ExecCtx;
use tmac_eval::serving::{batched_tok_s, ServeWorkload};
use tmac_eval::Table;
use tmac_llm::batch::{Scheduler, SchedulerConfig};
use tmac_llm::{BackendKind, Model, ModelConfig, WeightQuant};
use tmac_rng::Rng;
use tmac_serve::{ConnMode, Json, ServerConfig};

struct RequestResult {
    status: u16,
    tokens: usize,
    latency: Duration,
    ttft: Option<Duration>,
}

fn fail(t0: Instant) -> RequestResult {
    RequestResult {
        status: 0,
        tokens: 0,
        latency: t0.elapsed(),
        ttft: None,
    }
}

/// Blocking HTTP client with a persistent keep-alive connection.
///
/// Non-streaming requests ride one reused socket (HTTP/1.1 keep-alive,
/// responses delimited by `Content-Length`), reconnecting transparently if
/// the server closed it between requests. Streaming (SSE) responses are
/// close-delimited by design, so each one opens a fresh
/// `Connection: close` socket.
struct HttpClient {
    addr: SocketAddr,
    sock: Option<TcpStream>,
}

impl HttpClient {
    fn new(addr: SocketAddr) -> Self {
        HttpClient { addr, sock: None }
    }

    fn connect(addr: SocketAddr) -> Option<TcpStream> {
        let sock = TcpStream::connect(addr).ok()?;
        let _ = sock.set_read_timeout(Some(Duration::from_secs(120)));
        let _ = sock.set_nodelay(true);
        Some(sock)
    }

    /// One blocking completion request; streaming requests record TTFT at
    /// the first SSE data frame. `sampling` is a pre-encoded suffix of
    /// extra JSON fields (`,"temperature":...`) or empty.
    fn request(
        &mut self,
        prompt: &[u32],
        max_tokens: usize,
        stream: bool,
        sampling: &str,
    ) -> RequestResult {
        let ids: Vec<String> = prompt.iter().map(|t| t.to_string()).collect();
        let body = format!(
            "{{\"prompt\":[{}],\"max_tokens\":{max_tokens},\"stream\":{stream}{sampling}}}",
            ids.join(",")
        );
        let t0 = Instant::now();
        if stream {
            return self.stream_request(&body, t0);
        }
        // Two attempts: a reused socket may have been closed server-side
        // since the last response (write succeeds, read sees EOF) — retry
        // once on a fresh connection, but never retry a fresh one.
        for _ in 0..2 {
            let reused = self.sock.is_some();
            let sock = match self.sock.take().or_else(|| Self::connect(self.addr)) {
                Some(s) => s,
                None => return fail(t0),
            };
            match Self::keep_alive_roundtrip(sock, &body) {
                Ok((status, body_text, keep_sock)) => {
                    self.sock = keep_sock;
                    let tokens = if status != 200 {
                        0
                    } else {
                        Json::parse(&body_text)
                            .ok()
                            .and_then(|d| {
                                d.get("usage")?
                                    .get("completion_tokens")?
                                    .as_u64()
                                    .map(|n| n as usize)
                            })
                            .unwrap_or(0)
                    };
                    return RequestResult {
                        status,
                        tokens,
                        latency: t0.elapsed(),
                        ttft: None,
                    };
                }
                Err(()) if reused => continue,
                Err(()) => return fail(t0),
            }
        }
        fail(t0)
    }

    /// Writes `body` and reads one `Content-Length`-delimited response.
    /// Returns (status, body, socket to reuse — `None` if the server sent
    /// `Connection: close`).
    fn keep_alive_roundtrip(
        mut sock: TcpStream,
        body: &str,
    ) -> Result<(u16, String, Option<TcpStream>), ()> {
        let req = format!(
            "POST /v1/completions HTTP/1.1\r\nHost: lg\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        );
        sock.write_all(req.as_bytes()).map_err(|_| ())?;
        let mut raw: Vec<u8> = Vec::new();
        let mut tmp = [0u8; 4096];
        // Read to end-of-headers, then to the full Content-Length body.
        let header_end = loop {
            if let Some(at) = find_sub(&raw, b"\r\n\r\n") {
                break at + 4;
            }
            match sock.read(&mut tmp) {
                Ok(0) | Err(_) => return Err(()),
                Ok(n) => raw.extend_from_slice(&tmp[..n]),
            }
        };
        let head = String::from_utf8_lossy(&raw[..header_end]).to_string();
        let status: u16 = head
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or(())?;
        let content_length: usize = head
            .lines()
            .find_map(|l| {
                let (k, v) = l.split_once(':')?;
                k.eq_ignore_ascii_case("content-length")
                    .then(|| v.trim().parse().ok())?
            })
            .ok_or(())?;
        while raw.len() < header_end + content_length {
            match sock.read(&mut tmp) {
                Ok(0) | Err(_) => return Err(()),
                Ok(n) => raw.extend_from_slice(&tmp[..n]),
            }
        }
        let keep = !head.to_ascii_lowercase().contains("connection: close");
        let body_text =
            String::from_utf8_lossy(&raw[header_end..header_end + content_length]).to_string();
        Ok((status, body_text, keep.then_some(sock)))
    }

    /// SSE request on a fresh close-delimited connection.
    fn stream_request(&mut self, body: &str, t0: Instant) -> RequestResult {
        let Some(mut sock) = Self::connect(self.addr) else {
            return fail(t0);
        };
        let req = format!(
            "POST /v1/completions HTTP/1.1\r\nHost: lg\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        );
        if sock.write_all(req.as_bytes()).is_err() {
            return fail(t0);
        }
        let mut raw: Vec<u8> = Vec::new();
        let mut ttft = None;
        let mut tmp = [0u8; 4096];
        loop {
            match sock.read(&mut tmp) {
                Ok(0) => break,
                Ok(n) => {
                    raw.extend_from_slice(&tmp[..n]);
                    if ttft.is_none() && find_sub(&raw, b"\ndata: ").is_some() {
                        ttft = Some(t0.elapsed());
                    }
                }
                Err(_) => break,
            }
        }
        let latency = t0.elapsed();
        let text = String::from_utf8_lossy(&raw);
        let status: u16 = text
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .unwrap_or(0);
        let tokens = if status != 200 {
            0
        } else {
            text.lines()
                .filter(|l| l.starts_with("data: ") && l.contains("token_id"))
                .count()
        };
        RequestResult {
            status,
            tokens,
            latency,
            ttft,
        }
    }
}

/// One-shot request on its own client (phase-2 saturation workers).
fn run_request(addr: SocketAddr, prompt: &[u32], max_tokens: usize, stream: bool) -> RequestResult {
    HttpClient::new(addr).request(prompt, max_tokens, stream, "")
}

fn find_sub(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    haystack.windows(needle.len()).position(|w| w == needle)
}

fn percentile_ms(sorted: &[Duration], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx].as_secs_f64() * 1e3
}

fn main() {
    let quick = tmac_eval::quick();
    let do_assert = std::env::args().any(|a| a == "--assert");
    let external = tmac_eval::arg("addr", "");
    let threads: usize = tmac_eval::arg("threads", "1").parse().expect("--threads");
    let max_batch: usize = tmac_eval::arg("batch", "4").parse().expect("--batch");
    let layers: usize = tmac_eval::arg("layers", "6").parse().expect("--layers");
    let requests: usize = tmac_eval::arg("requests", if quick { "24" } else { "96" })
        .parse()
        .expect("--requests");
    let tenants: usize = tmac_eval::arg("tenants", "3").parse().expect("--tenants");
    let burst: usize = tmac_eval::arg("burst", "4").parse().expect("--burst");
    let gap_ms: u64 = tmac_eval::arg("gap-ms", if quick { "15" } else { "30" })
        .parse()
        .expect("--gap-ms");
    let prompt_len: usize = tmac_eval::arg("prompt", "4").parse().expect("--prompt");
    let n_new: usize = tmac_eval::arg("tokens", if quick { "8" } else { "16" })
        .parse()
        .expect("--tokens");
    let sat_streams: usize = tmac_eval::arg("streams", if quick { "8" } else { "16" })
        .parse()
        .expect("--streams");
    let sat_new: usize = tmac_eval::arg("sat-tokens", if quick { "64" } else { "96" })
        .parse()
        .expect("--sat-tokens");
    let seed: u64 = tmac_eval::arg("seed", "17").parse().expect("--seed");
    let temperature: f64 = tmac_eval::arg("temperature", "0")
        .parse()
        .expect("--temperature");

    let cfg = ModelConfig::tiny().scaled(
        layers,
        96,
        (prompt_len + n_new.max(sat_new) + 8)
            .next_power_of_two()
            .max(64),
    );
    let model = || {
        Model::synthetic(
            &cfg,
            WeightQuant::Rtn(2),
            BackendKind::Tmac(tmac_core::KernelOpts::tmac()),
            7,
        )
        .expect("model")
    };

    // In-process server unless an external address was given.
    let (addr, server) = if external.is_empty() {
        let sched = Scheduler::new(
            model(),
            SchedulerConfig {
                max_batch,
                max_pending: requests.max(sat_streams),
                ..SchedulerConfig::default()
            },
        );
        let server = tmac_serve::start(
            sched,
            ExecCtx::new(threads),
            ServerConfig {
                mode: ConnMode::Auto,
                ..ServerConfig::default()
            },
        )
        .expect("start server");
        (server.addr(), Some(server))
    } else {
        (external.parse().expect("--addr host:port"), None)
    };

    // ---- Phase 1: bursty multi-tenant open-loop replay -------------------
    // Arrival schedule: each tenant fires bursts of `burst` requests with a
    // randomized inter-burst gap; the merged schedule is sorted by time.
    let mut rng = Rng::seed_from_u64(seed);
    let prompts = ServeWorkload {
        streams: requests,
        prompt_len,
        n_new,
    }
    .prompts(cfg.vocab);
    // (arrival_ms, req idx) per tenant; each tenant is one sequential HTTP
    // client over a persistent keep-alive connection.
    let mut schedule: Vec<Vec<(u64, usize)>> = vec![Vec::new(); tenants];
    let mut t_by_tenant: Vec<u64> = (0..tenants).map(|k| (k as u64 * gap_ms) / 2).collect();
    let mut i = 0;
    'outer: loop {
        for (k, t) in t_by_tenant.iter_mut().enumerate() {
            for _ in 0..burst {
                if i >= requests {
                    break 'outer;
                }
                schedule[k].push((*t, i));
                i += 1;
            }
            *t += gap_ms / 2 + u64::from(rng.u32_below(gap_ms.max(2) as u32));
        }
    }

    // Optional sampling knobs: with `--temperature 0` (the default) the
    // bodies carry no sampling fields, so the perf gate keeps measuring
    // exactly the greedy path that `served_vs_direct` compares against.
    // Each request gets its own derived seed for reproducible variety.
    let sampling_for = move |idx: usize| {
        if temperature > 0.0 {
            format!(
                ",\"temperature\":{temperature},\"seed\":{}",
                seed.wrapping_add(idx as u64)
            )
        } else {
            String::new()
        }
    };

    // Warm-up request so table/cache setup is off the clock.
    let warm = run_request(addr, &prompts[0], 2, false);
    assert_eq!(warm.status, 200, "warm-up request failed");

    let t0 = Instant::now();
    let workers: Vec<_> = schedule
        .into_iter()
        .map(|entries| {
            let prompts = prompts.clone();
            std::thread::spawn(move || {
                let mut client = HttpClient::new(addr);
                let mut out = Vec::with_capacity(entries.len());
                for (at_ms, idx) in entries {
                    let target = Duration::from_millis(at_ms);
                    if let Some(wait) = target.checked_sub(t0.elapsed()) {
                        std::thread::sleep(wait);
                    }
                    let stream = idx % 2 == 0;
                    out.push(client.request(&prompts[idx], n_new, stream, &sampling_for(idx)));
                }
                out
            })
        })
        .collect();
    let results: Vec<RequestResult> = workers
        .into_iter()
        .flat_map(|w| w.join().unwrap())
        .collect();
    let wall = t0.elapsed().as_secs_f64();

    let ok: Vec<&RequestResult> = results.iter().filter(|r| r.status == 200).collect();
    let shed = results.iter().filter(|r| r.status == 429).count();
    let failed = results
        .iter()
        .filter(|r| r.status != 200 && r.status != 429)
        .count();
    let good_tokens: usize = ok.iter().map(|r| r.tokens).sum();
    let goodput = good_tokens as f64 / wall;
    let mut lat: Vec<Duration> = ok.iter().map(|r| r.latency).collect();
    lat.sort_unstable();
    let mut ttfts: Vec<Duration> = ok.iter().filter_map(|r| r.ttft).collect();
    ttfts.sort_unstable();

    let mut table = Table::new(&["metric", "value"]);
    table.row(vec!["requests".into(), results.len().to_string()]);
    table.row(vec!["completed (200)".into(), ok.len().to_string()]);
    table.row(vec!["shed (429)".into(), shed.to_string()]);
    table.row(vec!["failed".into(), failed.to_string()]);
    table.row(vec!["goodput tok/s".into(), format!("{goodput:.1}")]);
    table.row(vec![
        "latency p50/p99 ms".into(),
        format!(
            "{:.1} / {:.1}",
            percentile_ms(&lat, 0.50),
            percentile_ms(&lat, 0.99)
        ),
    ]);
    table.row(vec![
        "ttft p50/p99 ms".into(),
        format!(
            "{:.1} / {:.1}",
            percentile_ms(&ttfts, 0.50),
            percentile_ms(&ttfts, 0.99)
        ),
    ]);

    // ---- Phase 2: saturation served-vs-direct ratio ----------------------
    let mut served_vs_direct = f64::NAN;
    if external.is_empty() {
        let sat = ServeWorkload {
            streams: sat_streams,
            prompt_len,
            n_new: sat_new,
        };
        let sat_prompts = sat.prompts(cfg.vocab);
        // Paired best-of-4 rounds: each round measures served and direct
        // back-to-back and the best per-round ratio wins, so correlated
        // machine-load noise cancels instead of failing the gate.
        let ctx = ExecCtx::new(threads);
        let direct_model = model();
        let mut served_tok_s = 0.0f64;
        let mut direct_tok_s = 0.0f64;
        let mut all_ok = true;
        for _ in 0..4 {
            let t0 = Instant::now();
            let workers: Vec<_> = sat_prompts
                .iter()
                .cloned()
                .enumerate()
                .map(|(i, p)| {
                    std::thread::spawn(move || run_request(addr, &p, sat_new, i % 2 == 0))
                })
                .collect();
            let sat_results: Vec<RequestResult> =
                workers.into_iter().map(|w| w.join().unwrap()).collect();
            let served = sat.total_new() as f64 / t0.elapsed().as_secs_f64();
            all_ok &= sat_results
                .iter()
                .all(|r| r.status == 200 && r.tokens == sat_new);
            // Direct scheduler throughput on the identical workload (its
            // own warm-up inside).
            let direct = batched_tok_s(&direct_model, &sat, max_batch, &ctx);
            if served / direct > served_vs_direct || !served_vs_direct.is_finite() {
                served_vs_direct = served / direct;
                served_tok_s = served;
                direct_tok_s = direct;
            }
        }
        table.row(vec![
            "served tok/s (saturated)".into(),
            format!("{served_tok_s:.1}"),
        ]);
        table.row(vec!["direct tok/s".into(), format!("{direct_tok_s:.1}")]);
        table.row(vec![
            "served vs direct".into(),
            format!(
                "{served_vs_direct:.3}{}",
                if all_ok { "" } else { " (INCOMPLETE)" }
            ),
        ]);
        if do_assert {
            assert!(all_ok, "saturation phase had failed requests");
        }
    }

    println!(
        "load_gen: {} ({} layer(s)), {} reqs ({} tenants x bursts of {}, ~{gap_ms}ms gaps), {} thread(s)\n",
        cfg.name, cfg.n_layers, requests, tenants, burst, threads
    );
    table.emit("load_gen");

    if let Ok(path) = std::env::var("TMAC_PERF_OUT") {
        let mut metrics: Vec<(&str, f64)> = vec![
            ("served_goodput_tok_s", goodput),
            ("served_p50_ms", percentile_ms(&lat, 0.50)),
            ("served_p99_ms", percentile_ms(&lat, 0.99)),
            ("served_ttft_p50_ms", percentile_ms(&ttfts, 0.50)),
            ("served_ttft_p99_ms", percentile_ms(&ttfts, 0.99)),
            ("served_shed", shed as f64),
        ];
        if served_vs_direct.is_finite() {
            metrics.push(("served_vs_direct", served_vs_direct));
        }
        tmac_bench::write_perf_out(&path, &metrics);
        println!("wrote perf metrics to {path}");
    }

    if let Some(server) = server {
        server.shutdown();
    }

    if do_assert {
        assert!(failed == 0, "{failed} requests failed outright");
        assert!(
            ok.len() + shed == results.len(),
            "request accounting is inconsistent"
        );
        assert!(goodput > 0.0, "zero goodput");
        assert!(!ttfts.is_empty(), "no streaming TTFT observations");
        println!("load_gen: asserts passed");
    }
}
