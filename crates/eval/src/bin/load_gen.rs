//! `load_gen` — open-loop load generator and serving perf gate.
//!
//! Two phases against a `tmac-serve` instance (in-process over a tiny
//! synthetic model by default, or an external `--addr`):
//!
//! 1. **Bursty multi-tenant replay** — `--tenants` independent clients
//!    each fire bursts of `--burst` requests with randomized gaps (seeded,
//!    reproducible). Each tenant is one sequential HTTP client over a
//!    persistent keep-alive connection (streaming responses are SSE and
//!    close-delimited, so those open their own connection). Requests mix
//!    SSE streaming and plain JSON; `--temperature`/`--seed` add sampled
//!    decoding (default stays greedy so perf gates are comparable).
//!    Reports client-side p50/p99 latency, streaming TTFT, goodput
//!    (completed tokens/sec of wall time), and shed (429) counts.
//! 2. **Saturation ratio** (in-process only) — all `--streams` requests at
//!    once; the makespan is compared against driving the `Scheduler`
//!    directly on the identical workload (`served_vs_direct`), charging the
//!    whole HTTP/bridge stack against raw scheduler throughput.
//!
//! With `--trace`, phase 1 additionally reports the *server-side* phase
//! breakdown — queue / prefill / decode p50/p99 — read from the `timings`
//! object every completion response carries, and asserts each breakdown
//! sums to no more than the client-observed end-to-end latency.
//!
//! Shed requests (429) are retried up to [`MAX_RETRIES`] times with a
//! seeded, jittered exponential backoff floored at the server's
//! `Retry-After` hint; the summary reports total retries alongside the
//! requests still shed after them.
//!
//! With `TMAC_PERF_OUT=path.json` the metrics merge into the shared CI
//! perf file gated by `perf_check` (`min_served_vs_direct`,
//! `min_served_goodput_tok_s`). `--assert` additionally exits non-zero on
//! any 5xx, wedged request, or zero goodput. `--quick` shrinks everything
//! for CI.
//!
//! **Shared-prefix mode** (`--shared-prefix`): instead of the perf phases,
//! replay tenants that reuse one long common system prompt through the
//! server's radix prompt cache. Asserts that every tenant after the first
//! hits the cached prefix (via the `tmac_prefix_hits_total` gauge) and that
//! the served tokens are bit-exact versus driving the `Scheduler` directly
//! with caching disabled; violations exit non-zero.
//!
//! **Chaos mode** (`--chaos`, needs `--features failpoints`): instead of
//! the perf phases, arm a deterministic failpoint schedule (override with
//! `TMAC_CHAOS_SPEC`), drive concurrent mixed traffic — streaming,
//! non-streaming, and deliberate mid-stream disconnects — while probing
//! `/healthz`, then assert the survival invariants: the server still
//! answers, every gauge drains to zero, at least one sequence was
//! quarantined, the metrics snapshot is internally consistent, and a
//! post-chaos request is bit-exact against a Scheduler-direct reference.
//! Violations abort with a non-zero exit. `--mode epoll|threads` pins the
//! connection driver so CI can gate both.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};
use tmac_core::ExecCtx;
use tmac_eval::serving::{batched_tok_s, ServeWorkload};
use tmac_eval::Table;
use tmac_llm::batch::{Scheduler, SchedulerConfig};
use tmac_llm::{BackendKind, Model, ModelConfig, WeightQuant};
use tmac_rng::Rng;
use tmac_serve::{ConnMode, Json, ServerConfig};

/// Attempts beyond the first for a shed (429) request.
const MAX_RETRIES: u32 = 4;

/// The server's per-request phase breakdown (the `timings` object carried
/// by non-streaming responses and the final SSE frame).
#[derive(Clone, Copy)]
struct PhaseTimings {
    queue_ms: f64,
    prefill_ms: f64,
    decode_ms: f64,
}

impl PhaseTimings {
    fn from_json(doc: &Json) -> Option<PhaseTimings> {
        let t = doc.get("timings")?;
        Some(PhaseTimings {
            queue_ms: t.get("queue_ms")?.as_f64()?,
            prefill_ms: t.get("prefill_ms")?.as_f64()?,
            decode_ms: t.get("decode_ms")?.as_f64()?,
        })
    }

    fn sum_ms(&self) -> f64 {
        self.queue_ms + self.prefill_ms + self.decode_ms
    }
}

struct RequestResult {
    status: u16,
    tokens: usize,
    latency: Duration,
    ttft: Option<Duration>,
    /// Server's `Retry-After` hint (seconds), when the response carried one.
    retry_after: Option<u64>,
    /// 429-retries spent before this terminal outcome.
    retries: u32,
    /// Server-side phase breakdown (200 responses only).
    timings: Option<PhaseTimings>,
}

fn fail(t0: Instant) -> RequestResult {
    RequestResult {
        status: 0,
        tokens: 0,
        latency: t0.elapsed(),
        ttft: None,
        retry_after: None,
        retries: 0,
        timings: None,
    }
}

/// Parses a `Retry-After: <seconds>` header out of a raw response head.
fn retry_after_secs(head: &str) -> Option<u64> {
    head.lines().find_map(|l| {
        let (k, v) = l.split_once(':')?;
        k.eq_ignore_ascii_case("retry-after")
            .then(|| v.trim().parse().ok())?
    })
}

/// Blocking HTTP client with a persistent keep-alive connection.
///
/// Non-streaming requests ride one reused socket (HTTP/1.1 keep-alive,
/// responses delimited by `Content-Length`), reconnecting transparently if
/// the server closed it between requests. Streaming (SSE) responses are
/// close-delimited by design, so each one opens a fresh
/// `Connection: close` socket.
struct HttpClient {
    addr: SocketAddr,
    sock: Option<TcpStream>,
    timeout: Duration,
}

impl HttpClient {
    fn new(addr: SocketAddr) -> Self {
        Self::with_timeout(addr, Duration::from_secs(120))
    }

    /// Client with a custom read timeout (chaos runs use a short one so an
    /// injected wedge surfaces as a failed request instead of a hang).
    fn with_timeout(addr: SocketAddr, timeout: Duration) -> Self {
        HttpClient {
            addr,
            sock: None,
            timeout,
        }
    }

    fn connect(&self) -> Option<TcpStream> {
        let sock = TcpStream::connect(self.addr).ok()?;
        let _ = sock.set_read_timeout(Some(self.timeout));
        let _ = sock.set_nodelay(true);
        Some(sock)
    }

    /// One completion request with up to [`MAX_RETRIES`] retries on 429.
    /// The backoff is exponential from the server's `Retry-After` hint with
    /// seeded jitter in [0.5x, 1.5x), so tenants shed together don't
    /// stampede back together.
    fn request(
        &mut self,
        prompt: &[u32],
        max_tokens: usize,
        stream: bool,
        sampling: &str,
        rng: &mut Rng,
    ) -> RequestResult {
        let mut retries = 0u32;
        loop {
            let mut r = self.request_once(prompt, max_tokens, stream, sampling);
            if r.status != 429 || retries >= MAX_RETRIES {
                r.retries = retries;
                return r;
            }
            let hint_ms = r.retry_after.unwrap_or(1).saturating_mul(1000);
            let backoff = (hint_ms << retries.min(4)).clamp(2, 4000);
            let jittered = backoff / 2 + u64::from(rng.u32_below(backoff as u32));
            std::thread::sleep(Duration::from_millis(jittered));
            retries += 1;
        }
    }

    /// One blocking completion attempt; streaming requests record TTFT at
    /// the first SSE data frame. `sampling` is a pre-encoded suffix of
    /// extra JSON fields (`,"temperature":...`) or empty.
    fn request_once(
        &mut self,
        prompt: &[u32],
        max_tokens: usize,
        stream: bool,
        sampling: &str,
    ) -> RequestResult {
        let ids: Vec<String> = prompt.iter().map(|t| t.to_string()).collect();
        let body = format!(
            "{{\"prompt\":[{}],\"max_tokens\":{max_tokens},\"stream\":{stream}{sampling}}}",
            ids.join(",")
        );
        let t0 = Instant::now();
        if stream {
            return self.stream_request(&body, t0);
        }
        // Two attempts: a reused socket may have been closed server-side
        // since the last response (write succeeds, read sees EOF) — retry
        // once on a fresh connection, but never retry a fresh one.
        for _ in 0..2 {
            let reused = self.sock.is_some();
            let sock = match self.sock.take().or_else(|| self.connect()) {
                Some(s) => s,
                None => return fail(t0),
            };
            match Self::keep_alive_roundtrip(sock, &body) {
                Ok((status, head, body_text, keep_sock)) => {
                    self.sock = keep_sock;
                    let doc = (status == 200)
                        .then(|| Json::parse(&body_text).ok())
                        .flatten();
                    let tokens = doc
                        .as_ref()
                        .and_then(|d| {
                            d.get("usage")?
                                .get("completion_tokens")?
                                .as_u64()
                                .map(|n| n as usize)
                        })
                        .unwrap_or(0);
                    let timings = doc.as_ref().and_then(PhaseTimings::from_json);
                    return RequestResult {
                        status,
                        tokens,
                        latency: t0.elapsed(),
                        ttft: None,
                        retry_after: retry_after_secs(&head),
                        retries: 0,
                        timings,
                    };
                }
                Err(()) if reused => continue,
                Err(()) => return fail(t0),
            }
        }
        fail(t0)
    }

    /// Writes `body` and reads one `Content-Length`-delimited response.
    /// Returns (status, head, body, socket to reuse — `None` if the server
    /// sent `Connection: close`).
    fn keep_alive_roundtrip(
        mut sock: TcpStream,
        body: &str,
    ) -> Result<(u16, String, String, Option<TcpStream>), ()> {
        let req = format!(
            "POST /v1/completions HTTP/1.1\r\nHost: lg\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        );
        sock.write_all(req.as_bytes()).map_err(|_| ())?;
        let mut raw: Vec<u8> = Vec::new();
        let mut tmp = [0u8; 4096];
        // Read to end-of-headers, then to the full Content-Length body.
        let header_end = loop {
            if let Some(at) = find_sub(&raw, b"\r\n\r\n") {
                break at + 4;
            }
            match sock.read(&mut tmp) {
                Ok(0) | Err(_) => return Err(()),
                Ok(n) => raw.extend_from_slice(&tmp[..n]),
            }
        };
        let head = String::from_utf8_lossy(&raw[..header_end]).to_string();
        let status: u16 = head
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or(())?;
        let content_length: usize = head
            .lines()
            .find_map(|l| {
                let (k, v) = l.split_once(':')?;
                k.eq_ignore_ascii_case("content-length")
                    .then(|| v.trim().parse().ok())?
            })
            .ok_or(())?;
        while raw.len() < header_end + content_length {
            match sock.read(&mut tmp) {
                Ok(0) | Err(_) => return Err(()),
                Ok(n) => raw.extend_from_slice(&tmp[..n]),
            }
        }
        let keep = !head.to_ascii_lowercase().contains("connection: close");
        let body_text =
            String::from_utf8_lossy(&raw[header_end..header_end + content_length]).to_string();
        Ok((status, head, body_text, keep.then_some(sock)))
    }

    /// SSE request on a fresh close-delimited connection.
    fn stream_request(&mut self, body: &str, t0: Instant) -> RequestResult {
        let Some(mut sock) = self.connect() else {
            return fail(t0);
        };
        let req = format!(
            "POST /v1/completions HTTP/1.1\r\nHost: lg\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        );
        if sock.write_all(req.as_bytes()).is_err() {
            return fail(t0);
        }
        let mut raw: Vec<u8> = Vec::new();
        let mut ttft = None;
        let mut tmp = [0u8; 4096];
        loop {
            match sock.read(&mut tmp) {
                Ok(0) => break,
                Ok(n) => {
                    raw.extend_from_slice(&tmp[..n]);
                    if ttft.is_none() && find_sub(&raw, b"\ndata: ").is_some() {
                        ttft = Some(t0.elapsed());
                    }
                }
                Err(_) => break,
            }
        }
        let latency = t0.elapsed();
        let text = String::from_utf8_lossy(&raw);
        let status: u16 = text
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .unwrap_or(0);
        let tokens = if status != 200 {
            0
        } else {
            text.lines()
                .filter(|l| l.starts_with("data: ") && l.contains("token_id"))
                .count()
        };
        // The phase breakdown rides the final frame (the one that carries
        // `finish_reason`, just before `[DONE]`).
        let timings = (status == 200)
            .then(|| {
                text.lines()
                    .filter(|l| l.starts_with("data: ") && l.contains("\"timings\""))
                    .find_map(|l| PhaseTimings::from_json(&Json::parse(&l["data: ".len()..]).ok()?))
            })
            .flatten();
        RequestResult {
            status,
            tokens,
            latency,
            ttft,
            retry_after: retry_after_secs(&text),
            retries: 0,
            timings,
        }
    }
}

/// One-shot request on its own client (phase-2 saturation workers).
fn run_request(addr: SocketAddr, prompt: &[u32], max_tokens: usize, stream: bool) -> RequestResult {
    let mut rng = Rng::seed_from_u64(0x010a_d6e4);
    HttpClient::new(addr).request(prompt, max_tokens, stream, "", &mut rng)
}

fn find_sub(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    haystack.windows(needle.len()).position(|w| w == needle)
}

fn percentile_ms(sorted: &[Duration], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx].as_secs_f64() * 1e3
}

fn percentile_f(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

fn main() {
    let quick = tmac_eval::quick();
    let do_assert = std::env::args().any(|a| a == "--assert");
    let do_chaos = std::env::args().any(|a| a == "--chaos");
    let do_shared = std::env::args().any(|a| a == "--shared-prefix");
    let do_trace = std::env::args().any(|a| a == "--trace");
    let mode = match tmac_eval::arg("mode", "auto").as_str() {
        "auto" => ConnMode::Auto,
        "epoll" => ConnMode::Epoll,
        "threads" => ConnMode::Threads,
        other => panic!("--mode must be auto|epoll|threads, got {other}"),
    };
    let external = tmac_eval::arg("addr", "");
    let threads: usize = tmac_eval::arg("threads", "1").parse().expect("--threads");
    let max_batch: usize = tmac_eval::arg("batch", "4").parse().expect("--batch");
    let layers: usize = tmac_eval::arg("layers", "6").parse().expect("--layers");
    let requests: usize = tmac_eval::arg("requests", if quick { "24" } else { "96" })
        .parse()
        .expect("--requests");
    let tenants: usize = tmac_eval::arg("tenants", "3").parse().expect("--tenants");
    let burst: usize = tmac_eval::arg("burst", "4").parse().expect("--burst");
    let gap_ms: u64 = tmac_eval::arg("gap-ms", if quick { "15" } else { "30" })
        .parse()
        .expect("--gap-ms");
    let prompt_len: usize = tmac_eval::arg("prompt", "4").parse().expect("--prompt");
    let n_new: usize = tmac_eval::arg("tokens", if quick { "8" } else { "16" })
        .parse()
        .expect("--tokens");
    let sat_streams: usize = tmac_eval::arg("streams", if quick { "8" } else { "16" })
        .parse()
        .expect("--streams");
    let sat_new: usize = tmac_eval::arg("sat-tokens", if quick { "64" } else { "96" })
        .parse()
        .expect("--sat-tokens");
    let seed: u64 = tmac_eval::arg("seed", "17").parse().expect("--seed");
    let temperature: f64 = tmac_eval::arg("temperature", "0")
        .parse()
        .expect("--temperature");

    if do_chaos {
        run_chaos(mode, seed, threads);
        return;
    }
    if do_shared {
        run_shared_prefix(mode, threads, quick);
        return;
    }

    let cfg = ModelConfig::tiny().scaled(
        layers,
        96,
        (prompt_len + n_new.max(sat_new) + 8)
            .next_power_of_two()
            .max(64),
    );
    let model = || {
        Model::synthetic(
            &cfg,
            WeightQuant::Rtn(2),
            BackendKind::Tmac(tmac_core::KernelOpts::tmac()),
            7,
        )
        .expect("model")
    };

    // In-process server unless an external address was given.
    let (addr, server) = if external.is_empty() {
        let sched = Scheduler::new(
            model(),
            SchedulerConfig {
                max_batch,
                max_pending: requests.max(sat_streams),
                ..SchedulerConfig::default()
            },
        );
        let server = tmac_serve::start(
            sched,
            ExecCtx::new(threads),
            ServerConfig {
                mode,
                ..ServerConfig::default()
            },
        )
        .expect("start server");
        (server.addr(), Some(server))
    } else {
        (external.parse().expect("--addr host:port"), None)
    };

    // ---- Phase 1: bursty multi-tenant open-loop replay -------------------
    // Arrival schedule: each tenant fires bursts of `burst` requests with a
    // randomized inter-burst gap; the merged schedule is sorted by time.
    let mut rng = Rng::seed_from_u64(seed);
    let prompts = ServeWorkload {
        streams: requests,
        prompt_len,
        n_new,
    }
    .prompts(cfg.vocab);
    // (arrival_ms, req idx) per tenant; each tenant is one sequential HTTP
    // client over a persistent keep-alive connection.
    let mut schedule: Vec<Vec<(u64, usize)>> = vec![Vec::new(); tenants];
    let mut t_by_tenant: Vec<u64> = (0..tenants).map(|k| (k as u64 * gap_ms) / 2).collect();
    let mut i = 0;
    'outer: loop {
        for (k, t) in t_by_tenant.iter_mut().enumerate() {
            for _ in 0..burst {
                if i >= requests {
                    break 'outer;
                }
                schedule[k].push((*t, i));
                i += 1;
            }
            *t += gap_ms / 2 + u64::from(rng.u32_below(gap_ms.max(2) as u32));
        }
    }

    // Optional sampling knobs: with `--temperature 0` (the default) the
    // bodies carry no sampling fields, so the perf gate keeps measuring
    // exactly the greedy path that `served_vs_direct` compares against.
    // Each request gets its own derived seed for reproducible variety.
    let sampling_for = move |idx: usize| {
        if temperature > 0.0 {
            format!(
                ",\"temperature\":{temperature},\"seed\":{}",
                seed.wrapping_add(idx as u64)
            )
        } else {
            String::new()
        }
    };

    // Warm-up request so table/cache setup is off the clock.
    let warm = run_request(addr, &prompts[0], 2, false);
    assert_eq!(warm.status, 200, "warm-up request failed");

    let t0 = Instant::now();
    let workers: Vec<_> = schedule
        .into_iter()
        .enumerate()
        .map(|(k, entries)| {
            let prompts = prompts.clone();
            // Per-tenant backoff RNG so shed retries are reproducible.
            let mut rng = Rng::seed_from_u64(seed ^ (0xb0ff ^ k as u64).wrapping_mul(0x9e37));
            std::thread::spawn(move || {
                let mut client = HttpClient::new(addr);
                let mut out = Vec::with_capacity(entries.len());
                for (at_ms, idx) in entries {
                    let target = Duration::from_millis(at_ms);
                    if let Some(wait) = target.checked_sub(t0.elapsed()) {
                        std::thread::sleep(wait);
                    }
                    let stream = idx % 2 == 0;
                    out.push(client.request(
                        &prompts[idx],
                        n_new,
                        stream,
                        &sampling_for(idx),
                        &mut rng,
                    ));
                }
                out
            })
        })
        .collect();
    let results: Vec<RequestResult> = workers
        .into_iter()
        .flat_map(|w| w.join().unwrap())
        .collect();
    let wall = t0.elapsed().as_secs_f64();

    let ok: Vec<&RequestResult> = results.iter().filter(|r| r.status == 200).collect();
    let shed = results.iter().filter(|r| r.status == 429).count();
    let failed = results
        .iter()
        .filter(|r| r.status != 200 && r.status != 429)
        .count();
    let good_tokens: usize = ok.iter().map(|r| r.tokens).sum();
    let goodput = good_tokens as f64 / wall;
    let mut lat: Vec<Duration> = ok.iter().map(|r| r.latency).collect();
    lat.sort_unstable();
    let mut ttfts: Vec<Duration> = ok.iter().filter_map(|r| r.ttft).collect();
    ttfts.sort_unstable();

    let retries: u32 = results.iter().map(|r| r.retries).sum();
    let mut table = Table::new(&["metric", "value"]);
    table.row(vec!["requests".into(), results.len().to_string()]);
    table.row(vec!["completed (200)".into(), ok.len().to_string()]);
    table.row(vec!["shed (429 after retries)".into(), shed.to_string()]);
    table.row(vec!["429 retries".into(), retries.to_string()]);
    table.row(vec!["failed".into(), failed.to_string()]);
    table.row(vec!["goodput tok/s".into(), format!("{goodput:.1}")]);
    table.row(vec![
        "latency p50/p99 ms".into(),
        format!(
            "{:.1} / {:.1}",
            percentile_ms(&lat, 0.50),
            percentile_ms(&lat, 0.99)
        ),
    ]);
    table.row(vec![
        "ttft p50/p99 ms".into(),
        format!(
            "{:.1} / {:.1}",
            percentile_ms(&ttfts, 0.50),
            percentile_ms(&ttfts, 0.99)
        ),
    ]);

    // `--trace`: the server-side phase breakdown (from the `timings`
    // object each 200 carries), cross-checked against client-observed e2e.
    if do_trace {
        let timed: Vec<(&RequestResult, PhaseTimings)> =
            ok.iter().filter_map(|r| Some((*r, r.timings?))).collect();
        assert!(
            !timed.is_empty(),
            "--trace: no 200 response carried a timings object"
        );
        let sorted_phase = |f: &dyn Fn(&PhaseTimings) -> f64| -> Vec<f64> {
            let mut v: Vec<f64> = timed.iter().map(|(_, t)| f(t)).collect();
            v.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite phase timing"));
            v
        };
        for (label, phase) in [
            (
                "queue",
                &(|t: &PhaseTimings| t.queue_ms) as &dyn Fn(&PhaseTimings) -> f64,
            ),
            ("prefill", &|t: &PhaseTimings| t.prefill_ms),
            ("decode", &|t: &PhaseTimings| t.decode_ms),
        ] {
            let v = sorted_phase(phase);
            table.row(vec![
                format!("{label} p50/p99 ms"),
                format!(
                    "{:.1} / {:.1}",
                    percentile_f(&v, 0.50),
                    percentile_f(&v, 0.99)
                ),
            ]);
        }
        // Phases must be sane: non-negative, and their sum bounded by the
        // client-observed e2e latency (the breakdown covers scheduler
        // submit -> retire, a strict sub-interval of the HTTP round trip;
        // 50ms of slack absorbs clock-read jitter on loaded CI machines).
        for (r, t) in &timed {
            let e2e_ms = r.latency.as_secs_f64() * 1e3;
            assert!(
                t.queue_ms >= 0.0 && t.prefill_ms >= 0.0 && t.decode_ms >= 0.0,
                "--trace: negative phase timing {:?}",
                (t.queue_ms, t.prefill_ms, t.decode_ms)
            );
            assert!(
                t.sum_ms() <= e2e_ms + 50.0,
                "--trace: phase sum {:.1}ms exceeds client e2e {:.1}ms",
                t.sum_ms(),
                e2e_ms
            );
        }
    }

    // ---- Phase 2: saturation served-vs-direct ratio ----------------------
    let mut served_vs_direct = f64::NAN;
    if external.is_empty() {
        let sat = ServeWorkload {
            streams: sat_streams,
            prompt_len,
            n_new: sat_new,
        };
        let sat_prompts = sat.prompts(cfg.vocab);
        // Paired best-of-4 rounds: each round measures served and direct
        // back-to-back and the best per-round ratio wins, so correlated
        // machine-load noise cancels instead of failing the gate.
        let ctx = ExecCtx::new(threads);
        let direct_model = model();
        let mut served_tok_s = 0.0f64;
        let mut direct_tok_s = 0.0f64;
        let mut all_ok = true;
        for _ in 0..4 {
            let t0 = Instant::now();
            let workers: Vec<_> = sat_prompts
                .iter()
                .cloned()
                .enumerate()
                .map(|(i, p)| {
                    std::thread::spawn(move || run_request(addr, &p, sat_new, i % 2 == 0))
                })
                .collect();
            let sat_results: Vec<RequestResult> =
                workers.into_iter().map(|w| w.join().unwrap()).collect();
            let served = sat.total_new() as f64 / t0.elapsed().as_secs_f64();
            all_ok &= sat_results
                .iter()
                .all(|r| r.status == 200 && r.tokens == sat_new);
            // Direct scheduler throughput on the identical workload (its
            // own warm-up inside).
            let direct = batched_tok_s(&direct_model, &sat, max_batch, &ctx);
            if served / direct > served_vs_direct || !served_vs_direct.is_finite() {
                served_vs_direct = served / direct;
                served_tok_s = served;
                direct_tok_s = direct;
            }
        }
        table.row(vec![
            "served tok/s (saturated)".into(),
            format!("{served_tok_s:.1}"),
        ]);
        table.row(vec!["direct tok/s".into(), format!("{direct_tok_s:.1}")]);
        table.row(vec![
            "served vs direct".into(),
            format!(
                "{served_vs_direct:.3}{}",
                if all_ok { "" } else { " (INCOMPLETE)" }
            ),
        ]);
        if do_assert {
            assert!(all_ok, "saturation phase had failed requests");
        }
    }

    println!(
        "load_gen: {} ({} layer(s)), {} reqs ({} tenants x bursts of {}, ~{gap_ms}ms gaps), {} thread(s)\n",
        cfg.name, cfg.n_layers, requests, tenants, burst, threads
    );
    table.emit("load_gen");

    if let Ok(path) = std::env::var("TMAC_PERF_OUT") {
        let mut metrics: Vec<(&str, f64)> = vec![
            ("served_goodput_tok_s", goodput),
            ("served_p50_ms", percentile_ms(&lat, 0.50)),
            ("served_p99_ms", percentile_ms(&lat, 0.99)),
            ("served_ttft_p50_ms", percentile_ms(&ttfts, 0.50)),
            ("served_ttft_p99_ms", percentile_ms(&ttfts, 0.99)),
            ("served_shed", shed as f64),
        ];
        if served_vs_direct.is_finite() {
            metrics.push(("served_vs_direct", served_vs_direct));
        }
        tmac_bench::write_perf_out(&path, &metrics);
        println!("wrote perf metrics to {path}");
    }

    if let Some(server) = server {
        server.shutdown();
    }

    if do_assert {
        assert!(failed == 0, "{failed} requests failed outright");
        assert!(
            ok.len() + shed == results.len(),
            "request accounting is inconsistent"
        );
        assert!(goodput > 0.0, "zero goodput");
        assert!(!ttfts.is_empty(), "no streaming TTFT observations");
        println!("load_gen: asserts passed");
    }
}

// ---- Shared-prefix mode -------------------------------------------------

/// `--shared-prefix`: tenants replay prompts that reuse one long common
/// system prompt. The first request publishes the prefix into the radix
/// prompt cache; every tenant after it must hit the cached pages (the
/// server's `tmac_prefix_hits_total` gauge proves it) while the served
/// tokens stay bit-exact versus driving the `Scheduler` directly on a
/// fresh identical model with caching disabled. Violations panic
/// (non-zero exit), so CI can gate on this directly.
fn run_shared_prefix(mode: ConnMode, threads: usize, quick: bool) {
    use tmac_llm::batch::SubmitRequest;
    use tmac_llm::PAGE_POSITIONS;

    let tenants: usize = if quick { 4 } else { 8 };
    // Two full pages plus a partial third, so hits share whole pages and
    // copy-on-write forks the partial one.
    let prefix_len = 2 * PAGE_POSITIONS + 17;
    let n_new = 8;
    let cfg = ModelConfig::tiny().scaled(2, 96, (prefix_len + 2 + n_new + 8).next_power_of_two());
    let model = || {
        Model::synthetic(
            &cfg,
            WeightQuant::Rtn(2),
            BackendKind::Tmac(tmac_core::KernelOpts::tmac()),
            7,
        )
        .expect("model")
    };
    let prefix: Vec<u32> = (0..prefix_len as u32)
        .map(|i| (i * 7 + 3) % cfg.vocab as u32)
        .collect();
    let prompts: Vec<Vec<u32>> = (0..tenants as u32)
        .map(|k| {
            let mut p = prefix.clone();
            p.extend_from_slice(&[
                (k * 5 + 2) % cfg.vocab as u32,
                (k * 11 + 1) % cfg.vocab as u32,
            ]);
            p
        })
        .collect();

    // Scheduler-direct reference with caching off: the canonical private
    // output every served (cached) request must reproduce bit-exactly.
    let ctx = ExecCtx::new(threads);
    let expected: Vec<Vec<u32>> = {
        let mut sched = Scheduler::new(model(), SchedulerConfig::default());
        prompts
            .iter()
            .map(|p| {
                let id = sched
                    .submit(SubmitRequest::greedy(p, n_new).with_cache_prompt(false))
                    .expect("direct submit");
                let done = sched.run_to_completion(&ctx).expect("direct run");
                done.into_iter()
                    .find(|f| f.id == id)
                    .expect("direct seq")
                    .tokens
            })
            .collect()
    };

    let server = tmac_serve::start(
        Scheduler::new(
            model(),
            SchedulerConfig {
                max_batch: 4,
                max_pending: 64,
                ..SchedulerConfig::default()
            },
        ),
        ExecCtx::new(threads),
        ServerConfig {
            mode,
            ..ServerConfig::default()
        },
    )
    .expect("start server");
    let addr = server.addr();
    let metrics = server.metrics();

    // Publish the system prompt once, as a deployed server's first request
    // would, so every tenant below deterministically hits the cache.
    let warm = post_tokens(addr, &prefix, 1).expect("warm-up request failed");
    assert_eq!(warm.len(), 1, "warm-up must decode one token");

    let t0 = Instant::now();
    let workers: Vec<_> = prompts
        .iter()
        .cloned()
        .map(|p| std::thread::spawn(move || post_tokens(addr, &p, n_new)))
        .collect();
    let served: Vec<Option<Vec<u32>>> = workers
        .into_iter()
        .map(|h| h.join().expect("tenant worker"))
        .collect();
    let wall = t0.elapsed();

    // The step loop refreshes the gauges on its own cadence; give the
    // final snapshot a moment to land before reading it.
    let deadline = Instant::now() + Duration::from_secs(5);
    while metrics.prefix_hits.get() < tenants as u64 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(20));
    }
    let hits = metrics.prefix_hits.get();
    let hit_positions = metrics.prefix_hit_positions.get();
    let cow_forks = metrics.kv_cow_forks.get();
    let pages = metrics.kv_pages_total.get();

    let mut table = Table::new(&["metric", "value"]);
    table.row(vec!["tenants".into(), tenants.to_string()]);
    table.row(vec!["prefix tokens".into(), prefix_len.to_string()]);
    table.row(vec![
        "served ok".into(),
        served.iter().filter(|t| t.is_some()).count().to_string(),
    ]);
    table.row(vec!["prefix hits".into(), hits.to_string()]);
    table.row(vec![
        "prefix hit positions".into(),
        hit_positions.to_string(),
    ]);
    table.row(vec!["cow forks".into(), cow_forks.to_string()]);
    table.row(vec!["kv pages".into(), pages.to_string()]);
    table.row(vec!["wall s".into(), format!("{:.2}", wall.as_secs_f64())]);
    table.emit("load_gen --shared-prefix");

    server.shutdown();

    for (i, (got, want)) in served.iter().zip(&expected).enumerate() {
        assert_eq!(
            got.as_deref(),
            Some(&want[..]),
            "tenant {i}: served output diverged from the Scheduler-direct reference"
        );
    }
    assert!(
        hits >= tenants as u64,
        "every tenant must hit the published prefix: {hits} hits for {tenants} tenants"
    );
    assert!(
        hit_positions >= (tenants * prefix_len) as u64,
        "each hit must cover the whole shared prefix: {hit_positions} positions"
    );
    println!("\nload_gen --shared-prefix: prefix cache hit and bit-exactness held");
}

// ---- Chaos mode ---------------------------------------------------------

/// Without the `failpoints` feature there is nothing to inject; refuse
/// loudly instead of reporting a vacuous pass.
#[cfg(not(feature = "failpoints"))]
fn run_chaos(_mode: ConnMode, _seed: u64, _threads: usize) {
    eprintln!("load_gen: --chaos requires a build with --features failpoints");
    std::process::exit(2);
}

/// Drives concurrent mixed traffic under an armed failpoint schedule, then
/// asserts the survival invariants. Any violation panics (non-zero exit),
/// so CI can gate on this directly.
#[cfg(feature = "failpoints")]
fn run_chaos(mode: ConnMode, seed: u64, threads: usize) {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    use tmac_core::failpoint;
    use tmac_llm::batch::SubmitRequest;

    const WORKERS: usize = 12;
    const PER_WORKER: usize = 4;
    /// Forward panics (quarantined), one deterministic poisoned-logits hit,
    /// and serve-layer read/write/accept faults.
    const DEFAULT_SPEC: &str = "scheduler/forward=panic:p0.04;scheduler/logits=error:n9;\
                                serve/read=error:p0.03;serve/write=short:p0.03;\
                                serve/accept=error:p0.05";

    let cfg = ModelConfig::tiny().scaled(2, 96, 128);
    let model = || {
        Model::synthetic(
            &cfg,
            WeightQuant::Rtn(2),
            BackendKind::Tmac(tmac_core::KernelOpts::tmac()),
            7,
        )
        .expect("model")
    };
    let sched = Scheduler::new(
        model(),
        SchedulerConfig {
            max_batch: 4,
            max_pending: 64,
            ..SchedulerConfig::default()
        },
    );
    let server = tmac_serve::start(
        sched,
        ExecCtx::new(threads),
        ServerConfig {
            mode,
            ..ServerConfig::default()
        },
    )
    .expect("start server");
    let addr = server.addr();
    let metrics = server.metrics();

    // Warm-up (lookup-table setup and such) happens before faults arm.
    let warm = run_request(addr, &[1, 2, 3], 2, false);
    assert_eq!(warm.status, 200, "pre-chaos warm-up failed");

    let spec = std::env::var("TMAC_CHAOS_SPEC").unwrap_or_else(|_| DEFAULT_SPEC.replace(' ', ""));
    failpoint::configure(&spec, seed).expect("chaos failpoint spec");
    println!("chaos: armed `{spec}` (seed {seed}, mode {mode:?})\n");

    // Liveness prober: /healthz must keep answering during the storm.
    let stop = Arc::new(AtomicBool::new(false));
    let prober = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let (mut answered, mut probes) = (0u64, 0u64);
            while !stop.load(Ordering::Acquire) {
                probes += 1;
                if healthz(addr).is_some() {
                    answered += 1;
                }
                std::thread::sleep(Duration::from_millis(20));
            }
            (answered, probes)
        })
    };

    // The storm: concurrent workers mixing SSE, plain JSON, and deliberate
    // mid-stream client disconnects, all while faults fire.
    let t0 = Instant::now();
    let storm: Vec<_> = (0..WORKERS)
        .map(|w| {
            std::thread::spawn(move || {
                let mut rng = Rng::seed_from_u64(seed ^ (w as u64).wrapping_mul(0x5eed));
                let mut client = HttpClient::with_timeout(addr, Duration::from_secs(10));
                let mut done = [0usize; 4]; // ok, shed, error, aborted
                for i in 0..PER_WORKER {
                    let kind = (w + i) % 4;
                    let prompt = [(w as u32 % 90) + 1, (i as u32 % 90) + 1, 7];
                    if kind == 3 {
                        abort_mid_stream(addr, &prompt, 24);
                        done[3] += 1;
                    } else {
                        let r = client.request(&prompt, 8, kind == 0, "", &mut rng);
                        match r.status {
                            200 => done[0] += 1,
                            429 => done[1] += 1,
                            _ => done[2] += 1,
                        }
                    }
                }
                done
            })
        })
        .collect();
    let mut counts = [0usize; 4];
    for h in storm {
        let d = h.join().expect("storm worker");
        for (total, n) in counts.iter_mut().zip(d) {
            *total += n;
        }
    }
    let storm_wall = t0.elapsed();
    stop.store(true, Ordering::Release);
    let (answered, probes) = prober.join().expect("prober");

    // Disarm, let in-flight work drain, then take a quiesced snapshot.
    failpoint::clear();
    let quiesced = wait_quiesce(&metrics, Duration::from_secs(10));
    let mut healthy = false;
    let deadline = Instant::now() + Duration::from_secs(5);
    while Instant::now() < deadline {
        if healthz(addr) == Some(200) {
            healthy = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(50));
    }

    // A post-chaos request must be bit-exact vs driving the Scheduler
    // directly on a fresh identical model: quarantine and restarts must
    // not have corrupted surviving state.
    let probe_prompt = [3u32, 1, 4, 1, 5];
    let direct = {
        let ctx = ExecCtx::new(threads);
        let mut sched = Scheduler::new(model(), SchedulerConfig::default());
        let id = sched
            .submit(SubmitRequest::greedy(&probe_prompt, 6))
            .expect("direct submit");
        let done = sched.run_to_completion(&ctx).expect("direct run");
        done.into_iter()
            .find(|f| f.id == id)
            .expect("direct seq")
            .tokens
    };
    let post = post_tokens(addr, &probe_prompt, 6);

    // The probe itself perturbs the gauges; let it drain before the
    // consistency snapshot, or its just-retired sequence races the step
    // loop's next gauge refresh.
    let _ = wait_quiesce(&metrics, Duration::from_secs(5));
    let violations = metrics.consistency_violations();
    let quarantined = metrics.quarantined.get();
    let restarts = metrics.step_loop_restarts.get();

    let mut table = Table::new(&["metric", "value"]);
    table.row(vec!["requests".into(), (WORKERS * PER_WORKER).to_string()]);
    table.row(vec!["completed (200)".into(), counts[0].to_string()]);
    table.row(vec![
        "shed (429 after retries)".into(),
        counts[1].to_string(),
    ]);
    table.row(vec!["errored".into(), counts[2].to_string()]);
    table.row(vec![
        "client aborts (mid-stream)".into(),
        counts[3].to_string(),
    ]);
    table.row(vec![
        "storm wall s".into(),
        format!("{:.2}", storm_wall.as_secs_f64()),
    ]);
    table.row(vec![
        "healthz answers".into(),
        format!("{answered}/{probes}"),
    ]);
    table.row(vec!["quarantined".into(), quarantined.to_string()]);
    table.row(vec!["step-loop restarts".into(), restarts.to_string()]);
    table.row(vec!["gauges drained".into(), quiesced.to_string()]);
    table.emit("load_gen --chaos");

    server.shutdown();

    assert!(
        answered > 0,
        "healthz never answered during the storm ({probes} probes)"
    );
    assert!(counts[0] > 0, "no request completed during the storm");
    assert!(quiesced, "gauges did not drain to zero after the storm");
    assert!(healthy, "healthz did not return 200 after the storm");
    assert!(
        quarantined >= 1,
        "no sequence was quarantined: the chaos spec never bit"
    );
    assert!(
        violations.is_empty(),
        "metrics inconsistent after quiesce: {violations:?}"
    );
    assert_eq!(
        post.as_deref(),
        Some(&direct[..]),
        "post-chaos output diverged from the Scheduler-direct reference"
    );
    println!("\nload_gen --chaos: survival invariants held");
}

/// One `GET /healthz` probe; `Some(status)` when a full response arrived.
#[cfg(feature = "failpoints")]
fn healthz(addr: SocketAddr) -> Option<u16> {
    let mut sock = TcpStream::connect(addr).ok()?;
    sock.set_read_timeout(Some(Duration::from_secs(1))).ok()?;
    sock.write_all(b"GET /healthz HTTP/1.1\r\nHost: lg\r\nConnection: close\r\n\r\n")
        .ok()?;
    let mut raw = Vec::new();
    sock.read_to_end(&mut raw).ok()?;
    String::from_utf8_lossy(&raw)
        .split_whitespace()
        .nth(1)?
        .parse()
        .ok()
}

/// Starts an SSE completion and drops the socket after the first data
/// frame — a client that vanishes mid-stream.
#[cfg(feature = "failpoints")]
fn abort_mid_stream(addr: SocketAddr, prompt: &[u32], max_tokens: usize) {
    let Ok(mut sock) = TcpStream::connect(addr) else {
        return;
    };
    let _ = sock.set_read_timeout(Some(Duration::from_secs(5)));
    let ids: Vec<String> = prompt.iter().map(|t| t.to_string()).collect();
    let body = format!(
        "{{\"prompt\":[{}],\"max_tokens\":{max_tokens},\"stream\":true}}",
        ids.join(",")
    );
    let req = format!(
        "POST /v1/completions HTTP/1.1\r\nHost: lg\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    if sock.write_all(req.as_bytes()).is_err() {
        return;
    }
    let mut raw = Vec::new();
    let mut tmp = [0u8; 1024];
    while find_sub(&raw, b"\ndata: ").is_none() {
        match sock.read(&mut tmp) {
            Ok(0) | Err(_) => return,
            Ok(n) => raw.extend_from_slice(&tmp[..n]),
        }
    }
    // Drop: the server learns via write error / zero-byte peek.
}

/// Polls the serving gauges until they all read zero (idle server).
#[cfg(feature = "failpoints")]
fn wait_quiesce(metrics: &tmac_serve::Metrics, timeout: Duration) -> bool {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        if metrics.queue_depth.get() == 0
            && metrics.active_seqs.get() == 0
            && metrics.kv_slots_used.get() == 0
            && metrics.connections.get() == 0
        {
            return true;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    false
}

/// Non-streaming completion returning the emitted token ids.
fn post_tokens(addr: SocketAddr, prompt: &[u32], max_tokens: usize) -> Option<Vec<u32>> {
    let mut sock = TcpStream::connect(addr).ok()?;
    sock.set_read_timeout(Some(Duration::from_secs(30))).ok()?;
    let ids: Vec<String> = prompt.iter().map(|t| t.to_string()).collect();
    let body = format!(
        "{{\"prompt\":[{}],\"max_tokens\":{max_tokens},\"stream\":false}}",
        ids.join(",")
    );
    let req = format!(
        "POST /v1/completions HTTP/1.1\r\nHost: lg\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    sock.write_all(req.as_bytes()).ok()?;
    let mut raw = Vec::new();
    sock.read_to_end(&mut raw).ok()?;
    let text = String::from_utf8_lossy(&raw);
    let (head, body) = text.split_once("\r\n\r\n")?;
    if head.split_whitespace().nth(1)? != "200" {
        return None;
    }
    let doc = Json::parse(body).ok()?;
    let choice = &doc.get("choices")?.as_arr()?[0];
    choice
        .get("token_ids")?
        .as_arr()?
        .iter()
        .map(|t| t.as_u64().map(|n| n as u32))
        .collect()
}
