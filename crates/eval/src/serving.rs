//! Shared serving-throughput measurement: the workload generator and the
//! sequential/batched timing loops used by both the `batched_decode` bench
//! and the `serve_batch` eval binary, so their numbers stay comparable.

use std::time::Instant;
use tmac_core::ExecCtx;
use tmac_llm::batch::{Scheduler, SchedulerConfig, SubmitRequest};
use tmac_llm::{Engine, Model};

/// One serving scenario: `streams` requests of `prompt_len + n_new` tokens.
#[derive(Debug, Clone, Copy)]
pub struct ServeWorkload {
    /// Number of requests.
    pub streams: usize,
    /// Prompt tokens per request.
    pub prompt_len: usize,
    /// Generated tokens per request.
    pub n_new: usize,
}

impl ServeWorkload {
    /// Deterministic prompts for every stream.
    pub fn prompts(&self, vocab: usize) -> Vec<Vec<u32>> {
        (0..self.streams)
            .map(|s| {
                (0..self.prompt_len)
                    .map(|i| ((s * 31 + i * 7 + 1) % vocab) as u32)
                    .collect()
            })
            .collect()
    }

    /// Total generated tokens across all streams.
    pub fn total_new(&self) -> usize {
        self.streams * self.n_new
    }
}

/// Aggregate generated-tokens/sec of `streams` sequential single-stream
/// decodes (one at a time, each token-by-token after its prefill).
///
/// # Panics
///
/// Panics on model failures (bench context).
pub fn sequential_tok_s(model: &Model, w: &ServeWorkload, ctx: &ExecCtx) -> f64 {
    let mut engine = Engine::new(model.clone());
    let prompts = w.prompts(model.cfg.vocab);
    // Warm-up: one stream.
    engine
        .generate(&SubmitRequest::greedy(&prompts[0], w.n_new), ctx)
        .expect("warmup");
    let t0 = Instant::now();
    for p in &prompts {
        engine
            .generate(&SubmitRequest::greedy(p, w.n_new), ctx)
            .expect("generate");
    }
    w.total_new() as f64 / t0.elapsed().as_secs_f64()
}

/// Aggregate generated-tokens/sec of the scheduler serving all requests at
/// batch size `max_batch`.
///
/// # Panics
///
/// Panics on model failures or incomplete sequences (bench context).
pub fn batched_tok_s(model: &Model, w: &ServeWorkload, max_batch: usize, ctx: &ExecCtx) -> f64 {
    let mut sched = Scheduler::new(
        model.clone(),
        SchedulerConfig {
            max_batch,
            prefill_chunk: 16,
            ..SchedulerConfig::default()
        },
    );
    let prompts = w.prompts(model.cfg.vocab);
    // Warm-up: one stream through the scheduler.
    sched
        .submit(SubmitRequest::greedy(&prompts[0], w.n_new))
        .expect("submit");
    sched.run_to_completion(ctx).expect("warmup");
    for p in &prompts {
        sched
            .submit(SubmitRequest::greedy(p, w.n_new))
            .expect("submit");
    }
    let t0 = Instant::now();
    let done = sched.run_to_completion(ctx).expect("serve");
    let dt = t0.elapsed().as_secs_f64();
    assert_eq!(done.len(), w.streams);
    assert!(done
        .iter()
        .all(|f| f.tokens.len() == w.n_new && f.reason == tmac_llm::FinishReason::Length));
    w.total_new() as f64 / dt
}

#[cfg(test)]
mod tests {
    use super::*;
    use tmac_llm::{BackendKind, ModelConfig, WeightQuant};

    #[test]
    fn workload_prompts_are_deterministic_and_sized() {
        let w = ServeWorkload {
            streams: 3,
            prompt_len: 4,
            n_new: 2,
        };
        let p = w.prompts(64);
        assert_eq!(p.len(), 3);
        assert!(p.iter().all(|q| q.len() == 4 && q.iter().all(|&t| t < 64)));
        assert_eq!(p, w.prompts(64));
        assert_eq!(w.total_new(), 6);
    }

    #[test]
    fn measurement_loops_produce_positive_throughput() {
        let w = ServeWorkload {
            streams: 2,
            prompt_len: 2,
            n_new: 2,
        };
        let model = Model::synthetic(
            &ModelConfig::tiny(),
            WeightQuant::Rtn(2),
            BackendKind::F32,
            3,
        )
        .unwrap();
        let ctx = ExecCtx::new(1);
        assert!(sequential_tok_s(&model, &w, &ctx) > 0.0);
        assert!(batched_tok_s(&model, &w, 2, &ctx) > 0.0);
    }
}
