//! Experiment harness shared by the per-figure/table binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the paper
//! (see `DESIGN.md` §7 for the index). This library holds what they share:
//! the Llama-2-7B/13B kernel shapes, deterministic synthetic data, timing
//! helpers, and plain-text table/CSV output.

use std::time::Instant;
use tmac_rng::Rng;

pub mod attn;
pub mod serving;

/// The six kernel shapes of the paper's Figures 6, 7 and 10 (`M × K`),
/// drawn from Llama-2-7B (4096/11008) and Llama-2-13B (5120/13824).
pub const SHAPES: [(usize, usize); 6] = [
    (4096, 4096),
    (11008, 4096),
    (4096, 11008),
    (5120, 5120),
    (13824, 5120),
    (5120, 13824),
];

/// Display names `S0..S5` used by Figure 10.
pub fn shape_name(i: usize) -> String {
    let (m, k) = SHAPES[i];
    format!("{m}x{k}")
}

/// Deterministic pseudo-Gaussian weights (sum of uniforms), seeded.
pub fn make_weights(m: usize, k: usize, seed: u64) -> Vec<f32> {
    let mut rng = Rng::seed_from_u64(seed);
    (0..m * k).map(|_| rng.gaussian_ish() * 0.6).collect()
}

/// Deterministic pseudo-Gaussian activations, seeded.
pub fn make_act(n: usize, seed: u64) -> Vec<f32> {
    let mut rng = Rng::seed_from_u64(seed ^ 0x9E37_79B9_7F4A_7C15);
    (0..n).map(|_| rng.gaussian_ish()).collect()
}

/// Times `f`, returning the best wall-clock seconds over `iters` runs after
/// `warmup` runs (the paper's methodology: warm-up then average; best-of is
/// used here for noise robustness on shared CI hosts).
pub fn time_best<F: FnMut()>(mut f: F, warmup: usize, iters: usize) -> f64 {
    for _ in 0..warmup {
        f();
    }
    let mut best = f64::INFINITY;
    for _ in 0..iters.max(1) {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

/// Times `f` averaged over `iters` runs (for throughput-style numbers).
pub fn time_avg<F: FnMut()>(mut f: F, warmup: usize, iters: usize) -> f64 {
    for _ in 0..warmup {
        f();
    }
    let t0 = Instant::now();
    for _ in 0..iters.max(1) {
        f();
    }
    t0.elapsed().as_secs_f64() / iters.max(1) as f64
}

/// A plain-text, aligned results table that can be pasted into
/// `EXPERIMENTS.md`.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (stringified cells).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "table row arity");
        self.rows.push(cells);
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let ncol = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for i in 0..ncol {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:>width$}", cells[i], width = widths[i]));
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push_str(&format!(
            "{}\n",
            "-".repeat(widths.iter().sum::<usize>() + 2 * (ncol - 1))
        ));
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        out
    }

    /// Renders as CSV.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.headers.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }

    /// Prints the table and also writes `results/<name>.csv` (best effort;
    /// the directory is created if missing).
    pub fn emit(&self, name: &str) {
        println!("{}", self.render());
        let dir = std::path::Path::new("results");
        if std::fs::create_dir_all(dir).is_ok() {
            let _ = std::fs::write(dir.join(format!("{name}.csv")), self.to_csv());
        }
    }
}

/// Formats seconds as milliseconds with three significant decimals.
pub fn ms(seconds: f64) -> String {
    format!("{:.3}", seconds * 1e3)
}

/// An approximate CPU profile for the local evaluation host, used as the
/// calibration anchor for cross-device projections.
pub fn local_profile(threads: usize) -> tmac_devices::CpuProfile {
    tmac_devices::CpuProfile {
        name: "local x86-64",
        cores: threads.max(1),
        freq_ghz: 3.0,
        simd_bytes: 32,
        simd_ipc: 1.5,
        peak_bw_gbs: 25.0,
        sustained_bw_frac: 0.7,
        idle_w: 5.0,
        core_w: 4.0,
    }
}

/// Measures the local T-MAC and dequant GEMV at a reference shape and
/// derives per-family calibration factors for the device models.
///
/// Returns `(tmac, dequant)` calibrations. Falls back to the representative
/// defaults if a measurement fails.
pub fn calibrate(
    ctx: &tmac_core::ExecCtx,
) -> (tmac_devices::Calibration, tmac_devices::Calibration) {
    use tmac_devices::project::cpu_latency;
    use tmac_devices::Calibration;
    let (m, k, bits) = (2048usize, 2048usize, 2u8);
    let w = make_weights(m, k, 99);
    let act = make_act(k, 99);
    let mut out = vec![0f32; m];
    let profile = local_profile(ctx.threads());
    let Ok(qm) = tmac_quant::rtn::quantize(&w, m, k, bits, 32) else {
        return (Calibration::default_tmac(), Calibration::default_dequant());
    };
    let tmac_cal = match tmac_core::TmacLinear::new(&qm, tmac_core::KernelOpts::tmac()) {
        Ok(lin) => {
            let measured = time_best(|| lin.gemv(&act, &mut out, ctx).expect("gemv"), 3, 15);
            let modelled = cpu_latency(
                &profile,
                &tmac_core::cost::tmac_gemv_cost(
                    m,
                    k,
                    bits as usize,
                    32,
                    &tmac_core::KernelOpts::tmac(),
                ),
                ctx.threads(),
                Calibration::unit(),
            );
            Calibration::from_measurement(modelled, measured)
        }
        Err(_) => Calibration::default_tmac(),
    };
    let dequant_cal = match tmac_baseline::DequantLinear::new(&qm) {
        Ok(lin) => {
            let measured = time_best(|| lin.gemv(&act, &mut out, ctx).expect("gemv"), 3, 15);
            let modelled = cpu_latency(
                &profile,
                &tmac_core::cost::dequant_gemv_cost(m, k, bits as usize),
                ctx.threads(),
                Calibration::unit(),
            );
            Calibration::from_measurement(modelled, measured)
        }
        Err(_) => Calibration::default_dequant(),
    };
    (tmac_cal, dequant_cal)
}

/// Parses `--key value` style flags from the command line.
pub fn arg(name: &str, default: &str) -> String {
    let args: Vec<String> = std::env::args().collect();
    for i in 0..args.len() {
        if args[i] == format!("--{name}") && i + 1 < args.len() {
            return args[i + 1].clone();
        }
    }
    default.to_string()
}

/// True when `--quick` is passed (smaller iteration counts / fewer shapes).
pub fn quick() -> bool {
    std::env::args().any(|a| a == "--quick")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_match_paper() {
        assert_eq!(SHAPES.len(), 6);
        assert_eq!(shape_name(0), "4096x4096");
        assert_eq!(shape_name(5), "5120x13824");
    }

    #[test]
    fn weights_are_deterministic() {
        let a = make_weights(4, 8, 42);
        let b = make_weights(4, 8, 42);
        let c = make_weights(4, 8, 43);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["shape", "ms"]);
        t.row(vec!["4096x4096".into(), "1.23".into()]);
        t.row(vec!["s".into(), "400.0".into()]);
        let r = t.render();
        assert!(r.contains("4096x4096"));
        assert!(r.lines().count() == 4);
        let csv = t.to_csv();
        assert!(csv.starts_with("shape,ms\n"));
    }

    #[test]
    fn timing_helpers_run() {
        let mut x = 0u64;
        let t = time_best(
            || {
                x = x.wrapping_add(1);
            },
            1,
            3,
        );
        assert!(t >= 0.0);
        assert!(x >= 4);
    }
}
