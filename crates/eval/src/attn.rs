//! Long-context attention measurement: shared by the `attention` bench, the
//! `batched_decode` CI gate and `optprobe`'s `attn` probe, so all three
//! report comparable numbers.
//!
//! Two measurements exist:
//!
//! * [`attn_seconds`] — the per-token, per-layer attention primitive alone
//!   (all heads of one layer at a given context length), against a
//!   synthetically filled cache. This isolates the f32-two-pass vs
//!   i8-fused-streaming comparison from projection cost.
//! * [`decode_at_seq_tok_s`] — end-to-end decode throughput *at* a context
//!   length: the cache is pre-filled to `seq` positions and full forwards
//!   are timed from there, so long-context decode cost is measured without
//!   paying a long prefill in the harness.

use crate::time_best;
use tmac_core::ExecCtx;
use tmac_llm::attention::{attend, AttnScratch};
use tmac_llm::{KvCache, KvPrecision, Model, ModelConfig, Scratch};
use tmac_rng::Rng;

/// The shared attention-bench geometry: full mode is a 1-layer Llama-2-7B
/// scale-down (32 heads × 128); quick (CI smoke) mode keeps head_dim = 128
/// but 8 heads, so a seq-2048 sweep still streams a real K/V history.
/// `tail` positions beyond 2048 leave room to decode at that depth. Used by
/// `benches/attention.rs` and the `batched_decode` CI gate so the logged
/// sweep and the gated ratio measure the same shape.
pub fn bench_cfg(quick: bool, tail: usize) -> ModelConfig {
    if quick {
        ModelConfig {
            name: "attn-quick".into(),
            dim: 1024,
            n_layers: 1,
            n_heads: 8,
            n_kv_heads: 8,
            ffn_dim: 2816,
            vocab: 64,
            seq_max: 2048 + tail,
            rope_theta: 10000.0,
            kv_precision: KvPrecision::F32,
        }
    } else {
        ModelConfig::llama2_7b().scaled(1, 64, 2048 + tail)
    }
}

/// Fills positions `0..seq` of every layer of `cache` with deterministic
/// pseudo-Gaussian K/V rows and marks them as filled.
///
/// # Panics
///
/// Panics if `seq` exceeds the cache's `seq_max`.
pub fn fill_cache(cache: &mut KvCache, cfg: &ModelConfig, seq: usize, seed: u64) {
    let kv = cfg.kv_dim();
    let mut rng = Rng::seed_from_u64(seed);
    let mut k = vec![0f32; kv];
    let mut v = vec![0f32; kv];
    for pos in 0..seq {
        for x in k.iter_mut().chain(v.iter_mut()) {
            *x = rng.gaussian_ish();
        }
        for layer in 0..cfg.n_layers {
            cache.store(layer, pos, &k, &v);
        }
    }
    cache.set_len(cache.len().max(seq));
}

/// Best-of per-token attention seconds (all heads, one layer) at context
/// length `seq` for the given KV precision.
///
/// # Panics
///
/// Panics on harness misuse (`seq` of 0 or beyond `cfg.seq_max`).
pub fn attn_seconds(
    cfg: &ModelConfig,
    precision: KvPrecision,
    seq: usize,
    ctx: &ExecCtx,
    warmup: usize,
    iters: usize,
) -> f64 {
    assert!(seq > 0 && seq <= cfg.seq_max, "attn_seconds: bad seq");
    let mut cache = KvCache::with_precision(cfg, precision);
    // One layer of cache is enough for the primitive; fill layer 0 only by
    // measuring a 1-layer view of the config.
    let one_layer = ModelConfig {
        n_layers: 1,
        ..cfg.clone()
    };
    fill_cache(&mut cache, &one_layer, seq, 0x5eed ^ seq as u64);
    let mut rng = Rng::seed_from_u64(17);
    let q: Vec<f32> = (0..cfg.dim).map(|_| rng.gaussian_ish()).collect();
    let mut out = vec![0f32; cfg.dim];
    let mut scratch = AttnScratch::new(cfg);
    time_best(
        || attend(&q, &mut out, &cache, 0, seq - 1, &mut scratch, ctx),
        warmup,
        iters,
    )
}

/// The i8-fused vs f32-two-pass attention speedup at `seq` (ratio > 1 means
/// the quantized path is faster).
pub fn attn_ratio(
    cfg: &ModelConfig,
    seq: usize,
    ctx: &ExecCtx,
    warmup: usize,
    iters: usize,
) -> f64 {
    let f32_s = attn_seconds(cfg, KvPrecision::F32, seq, ctx, warmup, iters);
    let i8_s = attn_seconds(cfg, KvPrecision::I8, seq, ctx, warmup, iters);
    f32_s / i8_s
}

/// End-to-end decode tokens/sec *at* context length `seq`: pre-fills the
/// model's cache with `seq` synthetic positions, then times `n_tokens` real
/// forwards continuing from there (the model stores its own K/V as it
/// goes). The cache uses the model's configured KV precision.
///
/// # Panics
///
/// Panics if `seq + n_tokens` exceeds `seq_max`, or on model failures.
pub fn decode_at_seq_tok_s(model: &Model, seq: usize, n_tokens: usize, ctx: &ExecCtx) -> f64 {
    let cfg = &model.cfg;
    assert!(
        seq + n_tokens <= cfg.seq_max,
        "decode_at_seq: seq {seq} + {n_tokens} tokens exceeds seq_max {}",
        cfg.seq_max
    );
    assert!(n_tokens > 0, "decode_at_seq: need tokens");
    let mut cache = KvCache::new(cfg);
    fill_cache(&mut cache, cfg, seq, 99);
    let mut scratch = Scratch::new(cfg);
    // Warm-up forward at the measured depth (also faults in table caches).
    model
        .forward(1, seq, &mut cache, &mut scratch, ctx)
        .expect("warmup forward");
    let t0 = std::time::Instant::now();
    let mut token = 1u32;
    for i in 0..n_tokens {
        model
            .forward(token, seq + i, &mut cache, &mut scratch, ctx)
            .expect("decode forward");
        token = (tmac_llm::ops::argmax(&scratch.logits) as u32) % cfg.vocab as u32;
    }
    n_tokens as f64 / t0.elapsed().as_secs_f64()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_produces_sane_numbers() {
        let cfg = ModelConfig::tiny();
        let ctx = ExecCtx::new(1);
        for prec in [KvPrecision::F32, KvPrecision::I8] {
            let s = attn_seconds(&cfg, prec, 32, &ctx, 1, 2);
            assert!(s > 0.0 && s < 1.0, "{prec:?}: {s}");
        }
        let r = attn_ratio(&cfg, 32, &ctx, 1, 2);
        assert!(r > 0.0);
    }

    #[test]
    fn decode_at_seq_runs_past_the_prefill_mark() {
        let cfg = ModelConfig::tiny();
        let model = Model::synthetic(
            &cfg,
            tmac_llm::WeightQuant::Rtn(4),
            tmac_llm::BackendKind::F32,
            3,
        )
        .unwrap();
        let ctx = ExecCtx::new(1);
        let tok_s = decode_at_seq_tok_s(&model, 16, 4, &ctx);
        assert!(tok_s > 0.0);
    }
}
