//! Fixed-size scoped thread pool with static chunk scheduling.
//!
//! This is the parallel substrate of the T-MAC reproduction. The paper (§4,
//! "Parallelism") generates kernels that each execute "computations of a
//! single threadblock" and assigns those blocks to the threads of the host
//! framework's pool (llama.cpp's threadpool after integration, TVM's before).
//! This crate plays that role:
//!
//! * a **fixed set of persistent workers** created once (thread spawn is far
//!   too expensive per token, let alone per GEMV);
//! * **broadcast execution**: every dispatch runs one closure on all workers,
//!   passing each its thread index — the closure picks its thread block
//!   (M-range, tile range, ...) from the index, which is exactly the paper's
//!   static threadblock assignment;
//! * **no allocation per dispatch** and no locking inside the workers' hot
//!   path beyond one mutex acquisition per dispatch.
//!
//! # Examples
//!
//! ```
//! use tmac_threadpool::ThreadPool;
//! use std::sync::atomic::{AtomicUsize, Ordering};
//!
//! let pool = ThreadPool::new(4);
//! let sum = AtomicUsize::new(0);
//! pool.run(|tid, nthreads| {
//!     assert_eq!(nthreads, 4);
//!     sum.fetch_add(tid, Ordering::Relaxed);
//! });
//! assert_eq!(sum.load(Ordering::Relaxed), 0 + 1 + 2 + 3);
//! ```

use std::ops::Range;
use std::sync::Arc;
use std::sync::OnceLock;
use std::sync::{Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;

/// Locks a mutex, ignoring poisoning: job panics are caught on both the
/// worker and dispatcher sides (see [`ThreadPool::run`]), so the slot state
/// is always left consistent even when a job unwinds.
fn lock_slot(m: &Mutex<JobSlot>) -> MutexGuard<'_, JobSlot> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Type-erased job: invoked as `job(worker_index)`.
///
/// The two raw-pointer words are the data pointer and vtable pointer of a
/// `&(dyn Fn(usize) + Sync)` whose lifetime has been erased; see the safety
/// argument in [`ThreadPool::run`].
type RawJob = (*const (), *const ());

struct Shared {
    lock: Mutex<JobSlot>,
    start: Condvar,
    done: Condvar,
}

struct JobSlot {
    /// Monotonic dispatch counter; workers run a job exactly once per bump.
    generation: u64,
    /// Erased `&dyn Fn(usize)`; valid only while `remaining > 0`.
    job: Option<RawJob>,
    /// Workers still running the current generation.
    remaining: usize,
    /// Set when a worker's job invocation panicked this generation; the
    /// dispatcher turns it into a panic on the calling thread.
    worker_panicked: bool,
    /// Set once to ask workers to exit.
    shutdown: bool,
}

// SAFETY: `JobSlot.job` holds an erased `&(dyn Fn(usize) + Sync)`. It is only
// dereferenced by workers between the dispatcher storing it and the
// dispatcher observing `remaining == 0`, during which the referent is kept
// alive by the dispatching call frame (`run` blocks until completion). The
// `Sync` bound on the closure makes concurrent calls from multiple workers
// sound.
unsafe impl Send for JobSlot {}

/// A fixed-size pool of persistent worker threads.
///
/// Dropping the pool joins all workers.
pub struct ThreadPool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
    n_threads: usize,
}

impl ThreadPool {
    /// Creates a pool that executes jobs on `n_threads` threads.
    ///
    /// `n_threads` counts the *calling* thread too: a pool of size `n`
    /// spawns `n - 1` workers and runs the last share of every job inline on
    /// the dispatcher, so `ThreadPool::new(1)` spawns nothing and runs
    /// everything inline.
    ///
    /// # Panics
    ///
    /// Panics if `n_threads == 0`.
    pub fn new(n_threads: usize) -> Self {
        assert!(n_threads > 0, "thread pool needs at least one thread");
        let shared = Arc::new(Shared {
            lock: Mutex::new(JobSlot {
                generation: 0,
                job: None,
                remaining: 0,
                worker_panicked: false,
                shutdown: false,
            }),
            start: Condvar::new(),
            done: Condvar::new(),
        });
        let mut handles = Vec::with_capacity(n_threads.saturating_sub(1));
        for tid in 1..n_threads {
            let shared = Arc::clone(&shared);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("tmac-worker-{tid}"))
                    .spawn(move || worker_loop(&shared, tid))
                    .expect("failed to spawn worker thread"),
            );
        }
        ThreadPool {
            shared,
            handles,
            n_threads,
        }
    }

    /// Number of threads (including the dispatcher) jobs run on.
    pub fn threads(&self) -> usize {
        self.n_threads
    }

    /// Runs `f(thread_index, n_threads)` once on every thread, blocking until
    /// all invocations return.
    ///
    /// Thread index 0 is the calling thread. The closure must partition its
    /// own work from the index (static threadblock scheduling); see
    /// [`ThreadPool::chunks`] for the common contiguous-range split.
    ///
    /// One pool runs one job at a time: dispatching from two threads
    /// concurrently is a caller bug (the job slot is single-entry) and
    /// panics rather than risking workers reading a dead closure.
    ///
    /// # Panics
    ///
    /// Panics if another `run` is in flight on this pool, or if the job
    /// panicked on any thread — worker panics are caught, the dispatch is
    /// drained, and the panic is re-raised on the calling thread (so a
    /// panicking job can never deadlock or poison the pool).
    pub fn run<F>(&self, f: F)
    where
        F: Fn(usize, usize) + Sync,
    {
        if self.n_threads == 1 {
            f(0, 1);
            return;
        }
        let n = self.n_threads;
        let call = |tid: usize| f(tid, n);
        let job_ref: &(dyn Fn(usize) + Sync) = &call;
        // Erase the lifetime for storage in the shared slot.
        // SAFETY: a `&dyn Fn` reference is exactly two pointer-sized words
        // (data, vtable); transmuting to a pair of raw pointers and back is
        // the documented representation of trait-object references. The
        // erased reference never outlives this call frame (see below).
        let raw: RawJob = unsafe { std::mem::transmute(job_ref) };
        {
            let mut slot = lock_slot(&self.shared.lock);
            // A real assert (not debug-only): a concurrent dispatch would
            // let workers dereference a returned call frame's closure (UB).
            // The check is inside an already-taken lock, so it is free.
            assert_eq!(slot.remaining, 0, "concurrent ThreadPool::run dispatch");
            slot.job = Some(raw);
            slot.remaining = n - 1;
            slot.generation += 1;
            self.shared.start.notify_all();
        }
        // The dispatcher runs thread block 0 itself. Its share is run under
        // catch_unwind: unwinding out of this frame before the workers
        // finish would free the closure they are still calling (UB), so the
        // wait below must happen on the panic path too.
        let dispatcher_result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| call(0)));
        let mut slot = lock_slot(&self.shared.lock);
        while slot.remaining != 0 {
            slot = self
                .shared
                .done
                .wait(slot)
                .unwrap_or_else(|e| e.into_inner());
        }
        slot.job = None;
        let worker_panicked = std::mem::take(&mut slot.worker_panicked);
        drop(slot);
        // `raw` (and thus `call`/`f`) outlives all worker dereferences: they
        // all finished before `remaining` hit 0. Only now is unwinding safe.
        if let Err(p) = dispatcher_result {
            std::panic::resume_unwind(p);
        }
        if worker_panicked {
            panic!("a worker thread panicked during a ThreadPool job");
        }
    }

    /// Splits `0..total` into per-thread contiguous chunks and runs
    /// `f(range)` on each thread with its chunk.
    ///
    /// Chunk boundaries are aligned to `granule` (except possibly the final
    /// chunk end at `total`), so kernels can assume their range starts on a
    /// tile boundary. Threads whose chunk is empty do not invoke `f`.
    ///
    /// # Panics
    ///
    /// Panics if `granule == 0`.
    pub fn chunks<F>(&self, total: usize, granule: usize, f: F)
    where
        F: Fn(Range<usize>) + Sync,
    {
        assert!(granule > 0, "granule must be positive");
        self.run(|tid, n| {
            let r = chunk_range(total, granule, tid, n);
            if !r.is_empty() {
                f(r);
            }
        });
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        {
            let mut slot = lock_slot(&self.shared.lock);
            slot.shutdown = true;
            self.shared.start.notify_all();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: &Shared, tid: usize) {
    let mut seen_generation = 0u64;
    loop {
        let raw = {
            let mut slot = lock_slot(&shared.lock);
            while !slot.shutdown && slot.generation == seen_generation {
                slot = shared.start.wait(slot).unwrap_or_else(|e| e.into_inner());
            }
            if slot.shutdown {
                return;
            }
            seen_generation = slot.generation;
            slot.job.expect("job present for new generation")
        };
        // SAFETY: `raw` was produced from a live `&(dyn Fn(usize) + Sync)` in
        // `run`, which keeps the closure alive until `remaining` reaches 0;
        // we decrement only after the call returns or unwinds.
        let job: &(dyn Fn(usize) + Sync) = unsafe { std::mem::transmute(raw) };
        // Catch panics so `remaining` always reaches 0: a panicking job must
        // fail the dispatch (re-raised by `run`), not deadlock it — and the
        // worker must stay alive for future dispatches.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| job(tid)));
        let mut slot = lock_slot(&shared.lock);
        if result.is_err() {
            slot.worker_panicked = true;
        }
        slot.remaining -= 1;
        if slot.remaining == 0 {
            shared.done.notify_one();
        }
    }
}

/// Computes thread `tid`'s contiguous chunk of `0..total` out of `n` threads,
/// with boundaries aligned to `granule`.
pub fn chunk_range(total: usize, granule: usize, tid: usize, n: usize) -> Range<usize> {
    let tiles = total.div_ceil(granule);
    let per = tiles.div_ceil(n);
    let start_tile = (tid * per).min(tiles);
    let end_tile = ((tid + 1) * per).min(tiles);
    (start_tile * granule).min(total)..(end_tile * granule).min(total)
}

/// A process-wide pool sized to the machine's available parallelism.
///
/// Experiments that want explicit control construct their own pools; library
/// entry points default to this one.
pub fn global() -> &'static ThreadPool {
    static POOL: OnceLock<ThreadPool> = OnceLock::new();
    POOL.get_or_init(|| {
        let n = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        ThreadPool::new(n)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn single_thread_runs_inline() {
        let pool = ThreadPool::new(1);
        let hits = AtomicUsize::new(0);
        pool.run(|tid, n| {
            assert_eq!((tid, n), (0, 1));
            hits.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(hits.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn all_threads_participate() {
        let pool = ThreadPool::new(4);
        let mask = AtomicUsize::new(0);
        pool.run(|tid, _| {
            mask.fetch_or(1 << tid, Ordering::SeqCst);
        });
        assert_eq!(mask.load(Ordering::SeqCst), 0b1111);
    }

    #[test]
    fn sequential_dispatches_reuse_workers() {
        let pool = ThreadPool::new(3);
        let hits = AtomicUsize::new(0);
        for _ in 0..50 {
            pool.run(|_, _| {
                hits.fetch_add(1, Ordering::SeqCst);
            });
        }
        assert_eq!(hits.load(Ordering::SeqCst), 150);
    }

    #[test]
    fn chunks_cover_range_exactly_once() {
        let pool = ThreadPool::new(3);
        let total = 1003;
        let marks: Vec<AtomicUsize> = (0..total).map(|_| AtomicUsize::new(0)).collect();
        pool.chunks(total, 32, |r| {
            assert!(r.start % 32 == 0, "chunk start not tile-aligned");
            for i in r {
                marks[i].fetch_add(1, Ordering::SeqCst);
            }
        });
        assert!(marks.iter().all(|m| m.load(Ordering::SeqCst) == 1));
    }

    #[test]
    fn chunk_range_partitions() {
        for total in [0usize, 1, 31, 32, 33, 1000, 4096] {
            for granule in [1usize, 4, 32] {
                for n in 1..6 {
                    let mut covered = 0;
                    let mut prev_end = 0;
                    for tid in 0..n {
                        let r = chunk_range(total, granule, tid, n);
                        assert!(r.start <= r.end);
                        if !r.is_empty() {
                            assert_eq!(r.start, prev_end, "gap before chunk {tid}");
                            prev_end = r.end;
                            covered += r.len();
                        }
                    }
                    assert_eq!(covered, total, "total={total} granule={granule} n={n}");
                }
            }
        }
    }

    #[test]
    fn mutation_through_shared_slices() {
        // The canonical kernel pattern: each thread writes a disjoint range
        // of the output through a raw pointer wrapper.
        struct SendPtr(*mut f32);
        // SAFETY: threads write disjoint ranges (asserted by construction).
        unsafe impl Sync for SendPtr {}
        let pool = ThreadPool::new(4);
        let mut out = vec![0.0f32; 128];
        let ptr = SendPtr(out.as_mut_ptr());
        // Capture the whole wrapper (edition-2021 closures would otherwise
        // capture the raw-pointer field, which is not `Sync`).
        let ptr = &ptr;
        pool.chunks(128, 8, |r| {
            for i in r {
                // SAFETY: ranges from `chunks` are disjoint; `out` outlives
                // the dispatch (`run` blocks until completion).
                unsafe { *ptr.0.add(i) = i as f32 };
            }
        });
        let _ = ptr;
        for (i, &v) in out.iter().enumerate() {
            assert_eq!(v, i as f32);
        }
    }

    #[test]
    fn panicking_job_fails_the_dispatch_and_pool_survives() {
        let pool = ThreadPool::new(3);
        // A worker-side panic must not deadlock `run` — it re-raises on the
        // dispatcher...
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.run(|tid, _| {
                if tid == 1 {
                    panic!("boom");
                }
            });
        }));
        assert!(r.is_err(), "worker panic must propagate to the dispatcher");
        // ...and the pool must remain fully usable afterwards.
        let hits = AtomicUsize::new(0);
        pool.run(|_, _| {
            hits.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(hits.load(Ordering::SeqCst), 3);
        // Dispatcher-side panics (thread 0) also drain cleanly.
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.run(|tid, _| {
                if tid == 0 {
                    panic!("boom on dispatcher");
                }
            });
        }));
        assert!(r.is_err());
        let hits = AtomicUsize::new(0);
        pool.run(|_, _| {
            hits.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(hits.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn global_pool_is_usable() {
        let pool = global();
        let hits = AtomicUsize::new(0);
        pool.run(|_, _| {
            hits.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(hits.load(Ordering::SeqCst), pool.threads());
    }
}
