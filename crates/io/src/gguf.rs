//! GGUF-compatible reader/writer.
//!
//! GGUF is llama.cpp's container: magic `GGUF`, a little-endian versioned
//! header, string-keyed typed metadata, a tensor index (name, dims, GGML
//! type, data offset) and an aligned data section. This module implements
//! the v3 wire format (v2 parses identically for the subset used here):
//! enough to round-trip this repo's models byte-for-byte and to parse the
//! headers of real GGUF checkpoints — tensors of GGML types this build
//! does not consume still index cleanly; only *reading their payload*
//! reports [`IoError::Unsupported`].

use crate::{align_up, fnv1a64, put_string, Cursor, IoError, LoadMode, Mapping, DATA_ALIGN};
use std::path::Path;
use std::sync::Arc;

/// The GGUF magic.
pub const GGUF_MAGIC: [u8; 4] = *b"GGUF";

/// The GGUF version this writer emits.
pub const GGUF_VERSION: u32 = 3;

/// GGML tensor element types (the subset with known sizes, plus a
/// pass-through for everything else so real-checkpoint headers parse).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GgmlType {
    /// 32-bit float.
    F32,
    /// 16-bit float (parsed, not consumed).
    F16,
    /// llama.cpp `Q8_0` blocks (parsed, not consumed).
    Q8_0,
    /// Signed 8-bit integers — this repo stores quantization codes here.
    I8,
    /// Signed 32-bit integers.
    I32,
    /// A type id this build does not know; its payload size is unknown.
    Unknown(u32),
}

impl GgmlType {
    /// Decodes a GGML type id.
    pub fn from_id(id: u32) -> GgmlType {
        match id {
            0 => GgmlType::F32,
            1 => GgmlType::F16,
            8 => GgmlType::Q8_0,
            24 => GgmlType::I8,
            26 => GgmlType::I32,
            other => GgmlType::Unknown(other),
        }
    }

    /// The GGML type id.
    pub fn id(self) -> u32 {
        match self {
            GgmlType::F32 => 0,
            GgmlType::F16 => 1,
            GgmlType::Q8_0 => 8,
            GgmlType::I8 => 24,
            GgmlType::I32 => 26,
            GgmlType::Unknown(id) => id,
        }
    }

    /// `(block_elements, block_bytes)`, or `None` for unknown types.
    pub fn block(self) -> Option<(usize, usize)> {
        match self {
            GgmlType::F32 => Some((1, 4)),
            GgmlType::F16 => Some((1, 2)),
            GgmlType::Q8_0 => Some((32, 34)),
            GgmlType::I8 => Some((1, 1)),
            GgmlType::I32 => Some((1, 4)),
            GgmlType::Unknown(_) => None,
        }
    }

    /// Byte size of a tensor with `n` elements, if the type is known,
    /// `n` fills whole blocks, and the size fits in `u64` (header fields
    /// are untrusted — overflow means a crafted file, not a panic).
    pub fn data_len(self, n: u64) -> Option<u64> {
        let (be, bb) = self.block()?;
        if !n.is_multiple_of(be as u64) {
            return None;
        }
        (n / be as u64).checked_mul(bb as u64)
    }
}

/// A typed GGUF metadata value.
#[derive(Debug, Clone, PartialEq)]
pub enum GgufValue {
    /// GGUF type 0.
    U8(u8),
    /// GGUF type 1.
    I8(i8),
    /// GGUF type 2.
    U16(u16),
    /// GGUF type 3.
    I16(i16),
    /// GGUF type 4.
    U32(u32),
    /// GGUF type 5.
    I32(i32),
    /// GGUF type 6.
    F32(f32),
    /// GGUF type 7.
    Bool(bool),
    /// GGUF type 8.
    String(String),
    /// GGUF type 9: homogeneous array (element type id + items).
    Array {
        /// GGUF type id of the elements.
        elem: u32,
        /// The items (each of type `elem`).
        items: Vec<GgufValue>,
    },
    /// GGUF type 10.
    U64(u64),
    /// GGUF type 11.
    I64(i64),
    /// GGUF type 12.
    F64(f64),
}

impl GgufValue {
    /// The GGUF value-type id.
    pub fn type_id(&self) -> u32 {
        match self {
            GgufValue::U8(_) => 0,
            GgufValue::I8(_) => 1,
            GgufValue::U16(_) => 2,
            GgufValue::I16(_) => 3,
            GgufValue::U32(_) => 4,
            GgufValue::I32(_) => 5,
            GgufValue::F32(_) => 6,
            GgufValue::Bool(_) => 7,
            GgufValue::String(_) => 8,
            GgufValue::Array { .. } => 9,
            GgufValue::U64(_) => 10,
            GgufValue::I64(_) => 11,
            GgufValue::F64(_) => 12,
        }
    }

    /// The value as an unsigned integer, if it is any integer type.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            GgufValue::U8(v) => Some(v as u64),
            GgufValue::I8(v) if v >= 0 => Some(v as u64),
            GgufValue::U16(v) => Some(v as u64),
            GgufValue::I16(v) if v >= 0 => Some(v as u64),
            GgufValue::U32(v) => Some(v as u64),
            GgufValue::I32(v) if v >= 0 => Some(v as u64),
            GgufValue::U64(v) => Some(v),
            GgufValue::I64(v) if v >= 0 => Some(v as u64),
            _ => None,
        }
    }

    /// The value as `f32`, if it is a float type.
    pub fn as_f32(&self) -> Option<f32> {
        match *self {
            GgufValue::F32(v) => Some(v),
            GgufValue::F64(v) => Some(v as f32),
            _ => None,
        }
    }

    /// The value as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            GgufValue::String(s) => Some(s),
            _ => None,
        }
    }

    pub(crate) fn encode(&self, out: &mut Vec<u8>) {
        match self {
            GgufValue::U8(v) => out.push(*v),
            GgufValue::I8(v) => out.push(*v as u8),
            GgufValue::U16(v) => out.extend_from_slice(&v.to_le_bytes()),
            GgufValue::I16(v) => out.extend_from_slice(&v.to_le_bytes()),
            GgufValue::U32(v) => out.extend_from_slice(&v.to_le_bytes()),
            GgufValue::I32(v) => out.extend_from_slice(&v.to_le_bytes()),
            GgufValue::F32(v) => out.extend_from_slice(&v.to_le_bytes()),
            GgufValue::Bool(v) => out.push(*v as u8),
            GgufValue::String(s) => put_string(out, s),
            GgufValue::Array { elem, items } => {
                out.extend_from_slice(&elem.to_le_bytes());
                out.extend_from_slice(&(items.len() as u64).to_le_bytes());
                for it in items {
                    debug_assert_eq!(it.type_id(), *elem, "heterogeneous GGUF array");
                    it.encode(out);
                }
            }
            GgufValue::U64(v) => out.extend_from_slice(&v.to_le_bytes()),
            GgufValue::I64(v) => out.extend_from_slice(&v.to_le_bytes()),
            GgufValue::F64(v) => out.extend_from_slice(&v.to_le_bytes()),
        }
    }

    pub(crate) fn decode(ty: u32, c: &mut Cursor<'_>, what: &str) -> Result<GgufValue, IoError> {
        Ok(match ty {
            0 => GgufValue::U8(c.u8(what)?),
            1 => GgufValue::I8(c.u8(what)? as i8),
            2 => GgufValue::U16(c.u16(what)?),
            3 => GgufValue::I16(c.u16(what)? as i16),
            4 => GgufValue::U32(c.u32(what)?),
            5 => GgufValue::I32(c.u32(what)? as i32),
            6 => GgufValue::F32(c.f32(what)?),
            7 => GgufValue::Bool(c.u8(what)? != 0),
            8 => GgufValue::String(c.string(what)?),
            9 => {
                let elem = c.u32(what)?;
                if elem == 9 {
                    return Err(IoError::Corrupt(format!("{what}: nested array")));
                }
                let n = c.u64(what)? as usize;
                if n > 1 << 24 {
                    return Err(IoError::Corrupt(format!(
                        "{what}: implausible array length {n}"
                    )));
                }
                let mut items = Vec::with_capacity(n.min(4096));
                for _ in 0..n {
                    items.push(GgufValue::decode(elem, c, what)?);
                }
                GgufValue::Array { elem, items }
            }
            10 => GgufValue::U64(c.u64(what)?),
            11 => GgufValue::I64(c.u64(what)? as i64),
            12 => GgufValue::F64(c.f64(what)?),
            other => {
                return Err(IoError::Corrupt(format!(
                    "{what}: unknown GGUF value type {other}"
                )))
            }
        })
    }
}

/// One entry of the tensor index.
#[derive(Debug, Clone)]
pub struct GgufTensorInfo {
    /// Tensor name.
    pub name: String,
    /// Dimensions (GGUF order; product = element count).
    pub dims: Vec<u64>,
    /// Element type.
    pub dtype: GgmlType,
    /// Byte offset of the data, relative to the data-section start.
    pub offset: u64,
}

impl GgufTensorInfo {
    /// Total element count, saturating on overflow (dims are untrusted
    /// header fields; a saturated count can never pass the size checks,
    /// and never panics in debug builds).
    pub fn elements(&self) -> u64 {
        self.dims.iter().fold(1u64, |acc, &d| acc.saturating_mul(d))
    }
}

/// A parsed GGUF file.
#[derive(Debug)]
pub struct GgufFile {
    map: Arc<Mapping>,
    version: u32,
    meta: Vec<(String, GgufValue)>,
    tensors: Vec<GgufTensorInfo>,
    data_start: usize,
}

impl GgufFile {
    /// Opens and parses a GGUF file.
    ///
    /// # Errors
    ///
    /// Typed [`IoError`]s for filesystem failures, bad magic, unsupported
    /// versions, and structural corruption.
    pub fn open(path: &Path, mode: LoadMode) -> Result<GgufFile, IoError> {
        Self::parse(Arc::new(Mapping::open(path, mode)?))
    }

    /// Parses an in-memory image (used by tests and round-trip checks).
    ///
    /// # Errors
    ///
    /// Same contract as [`GgufFile::open`].
    pub fn parse(map: Arc<Mapping>) -> Result<GgufFile, IoError> {
        let bytes = map.bytes();
        let mut c = Cursor::new(bytes);
        let magic: [u8; 4] = c.take(4, "magic")?.try_into().unwrap();
        if magic != GGUF_MAGIC {
            return Err(IoError::BadMagic {
                expected: GGUF_MAGIC,
                found: magic,
            });
        }
        let version = c.u32("version")?;
        if !(2..=3).contains(&version) {
            return Err(IoError::Version {
                found: version,
                supported: "GGUF v2-v3",
            });
        }
        let tensor_count = c.u64("tensor count")? as usize;
        let kv_count = c.u64("metadata count")? as usize;
        if tensor_count > 1 << 20 || kv_count > 1 << 20 {
            return Err(IoError::Corrupt(format!(
                "implausible counts: {tensor_count} tensors, {kv_count} metadata keys"
            )));
        }
        let mut meta = Vec::with_capacity(kv_count.min(1024));
        for _ in 0..kv_count {
            let key = c.string("metadata key")?;
            let ty = c.u32("metadata value type")?;
            let value = GgufValue::decode(ty, &mut c, &format!("metadata {key:?}"))?;
            meta.push((key, value));
        }
        let mut tensors = Vec::with_capacity(tensor_count.min(4096));
        for _ in 0..tensor_count {
            let name = c.string("tensor name")?;
            let n_dims = c.u32(&format!("{name}: n_dims"))? as usize;
            if n_dims > 8 {
                return Err(IoError::Corrupt(format!("{name}: {n_dims} dimensions")));
            }
            let mut dims = Vec::with_capacity(n_dims);
            for _ in 0..n_dims {
                dims.push(c.u64(&format!("{name}: dim"))?);
            }
            let dtype = GgmlType::from_id(c.u32(&format!("{name}: type"))?);
            let offset = c.u64(&format!("{name}: offset"))?;
            tensors.push(GgufTensorInfo {
                name,
                dims,
                dtype,
                offset,
            });
        }
        let alignment = meta
            .iter()
            .find(|(k, _)| k == "general.alignment")
            .and_then(|(_, v)| v.as_u64())
            .unwrap_or(DATA_ALIGN as u64) as usize;
        if alignment == 0 || !alignment.is_power_of_two() {
            return Err(IoError::Corrupt(format!("bad alignment {alignment}")));
        }
        let data_start = c.pos().div_ceil(alignment) * alignment;
        // Validate every known-type tensor's data range up front so data
        // access never panics.
        for t in &tensors {
            if let Some(len) = t.dtype.data_len(t.elements()) {
                let end = (data_start as u64)
                    .checked_add(t.offset)
                    .and_then(|start| start.checked_add(len))
                    .ok_or_else(|| IoError::Corrupt(format!("{}: offset overflow", t.name)))?;
                let start = data_start as u64 + t.offset; // no overflow: end computed above
                if end > bytes.len() as u64 {
                    return Err(IoError::Truncated {
                        what: format!("tensor {} data", t.name),
                        need: len as usize,
                        have: bytes
                            .len()
                            .saturating_sub(start.min(bytes.len() as u64) as usize),
                    });
                }
            }
        }
        Ok(GgufFile {
            map,
            version,
            meta,
            tensors,
            data_start,
        })
    }

    /// The parsed format version.
    pub fn version(&self) -> u32 {
        self.version
    }

    /// All metadata, in file order.
    pub fn meta_entries(&self) -> &[(String, GgufValue)] {
        &self.meta
    }

    /// Looks up a metadata value by key.
    pub fn meta(&self, key: &str) -> Option<&GgufValue> {
        self.meta.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// The tensor index, in file order.
    pub fn tensors(&self) -> &[GgufTensorInfo] {
        &self.tensors
    }

    /// Looks up a tensor by name.
    pub fn tensor(&self, name: &str) -> Option<&GgufTensorInfo> {
        self.tensors.iter().find(|t| t.name == name)
    }

    /// The raw data bytes of tensor `name`.
    ///
    /// # Errors
    ///
    /// [`IoError::MissingTensor`] for unknown names,
    /// [`IoError::Unsupported`] for tensors of unknown GGML types.
    pub fn tensor_bytes(&self, name: &str) -> Result<&[u8], IoError> {
        let t = self
            .tensor(name)
            .ok_or_else(|| IoError::MissingTensor(name.into()))?;
        let len = t.dtype.data_len(t.elements()).ok_or_else(|| {
            IoError::Unsupported(format!(
                "tensor {name}: GGML type {:?} has no known payload size",
                t.dtype
            ))
        })? as usize;
        let start = self.data_start + t.offset as usize;
        // Ranges were validated at parse time.
        Ok(&self.map.bytes()[start..start + len])
    }

    /// The `f32` payload of tensor `name`, copied out (the interchange
    /// path; the zero-copy hot path is the `.tmac` container).
    ///
    /// # Errors
    ///
    /// [`IoError::ShapeMismatch`] if the tensor is not `F32`.
    pub fn tensor_f32(&self, name: &str) -> Result<Vec<f32>, IoError> {
        let t = self
            .tensor(name)
            .ok_or_else(|| IoError::MissingTensor(name.into()))?;
        if t.dtype != GgmlType::F32 {
            return Err(IoError::ShapeMismatch(format!(
                "tensor {name}: expected F32, found {:?}",
                t.dtype
            )));
        }
        let bytes = self.tensor_bytes(name)?;
        Ok(bytes
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }

    /// A content hash of a tensor's payload (round-trip assertions).
    ///
    /// # Errors
    ///
    /// Same contract as [`GgufFile::tensor_bytes`].
    pub fn tensor_checksum(&self, name: &str) -> Result<u64, IoError> {
        Ok(fnv1a64(self.tensor_bytes(name)?))
    }
}

/// A GGUF writer: collect metadata and tensors, then serialize.
#[derive(Debug, Default)]
pub struct GgufWriter {
    meta: Vec<(String, GgufValue)>,
    tensors: Vec<(String, Vec<u64>, GgmlType, Vec<u8>)>,
}

impl GgufWriter {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a metadata key/value pair.
    pub fn meta(&mut self, key: &str, value: GgufValue) -> &mut Self {
        self.meta.push((key.to_string(), value));
        self
    }

    /// Appends a tensor.
    ///
    /// # Errors
    ///
    /// [`IoError::ShapeMismatch`] if `data` does not match `dims`/`dtype`.
    pub fn tensor(
        &mut self,
        name: &str,
        dims: &[u64],
        dtype: GgmlType,
        data: Vec<u8>,
    ) -> Result<&mut Self, IoError> {
        let elements = dims.iter().fold(1u64, |acc, &d| acc.saturating_mul(d));
        match dtype.data_len(elements) {
            Some(len) if len == data.len() as u64 => {}
            _ => {
                return Err(IoError::ShapeMismatch(format!(
                    "tensor {name}: {} data bytes for dims {dims:?} of {dtype:?}",
                    data.len()
                )))
            }
        }
        self.tensors
            .push((name.to_string(), dims.to_vec(), dtype, data));
        Ok(self)
    }

    /// Convenience: appends an `f32` tensor.
    ///
    /// # Errors
    ///
    /// Same contract as [`GgufWriter::tensor`].
    pub fn tensor_f32(
        &mut self,
        name: &str,
        dims: &[u64],
        data: &[f32],
    ) -> Result<&mut Self, IoError> {
        let mut bytes = Vec::with_capacity(data.len() * 4);
        for v in data {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        self.tensor(name, dims, GgmlType::F32, bytes)
    }

    /// Serializes to an in-memory image.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&GGUF_MAGIC);
        out.extend_from_slice(&GGUF_VERSION.to_le_bytes());
        out.extend_from_slice(&(self.tensors.len() as u64).to_le_bytes());
        let has_alignment = self.meta.iter().any(|(k, _)| k == "general.alignment");
        let kv_count = self.meta.len() as u64 + !has_alignment as u64;
        out.extend_from_slice(&kv_count.to_le_bytes());
        if !has_alignment {
            put_string(&mut out, "general.alignment");
            out.extend_from_slice(&4u32.to_le_bytes()); // value type U32
            out.extend_from_slice(&(DATA_ALIGN as u32).to_le_bytes());
        }
        for (k, v) in &self.meta {
            put_string(&mut out, k);
            out.extend_from_slice(&v.type_id().to_le_bytes());
            v.encode(&mut out);
        }
        // Tensor index: offsets are relative to the aligned data section,
        // each tensor aligned.
        let mut offset = 0u64;
        for (name, dims, dtype, data) in &self.tensors {
            put_string(&mut out, name);
            out.extend_from_slice(&(dims.len() as u32).to_le_bytes());
            for d in dims {
                out.extend_from_slice(&d.to_le_bytes());
            }
            out.extend_from_slice(&dtype.id().to_le_bytes());
            out.extend_from_slice(&offset.to_le_bytes());
            offset += align_up(data.len()) as u64;
        }
        let data_start = align_up(out.len());
        out.resize(data_start, 0);
        for (_, _, _, data) in &self.tensors {
            out.extend_from_slice(data);
            out.resize(align_up(out.len()), 0);
        }
        out
    }

    /// Writes the file to `path`.
    ///
    /// # Errors
    ///
    /// [`IoError::Io`] on filesystem failures.
    pub fn write(&self, path: &Path) -> Result<(), IoError> {
        std::fs::write(path, self.to_bytes())
            .map_err(|e| IoError::Io(format!("write {}: {e}", path.display())))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> GgufWriter {
        let mut w = GgufWriter::new();
        w.meta("general.name", GgufValue::String("unit".into()))
            .meta("tmac.cfg.dim", GgufValue::U64(64))
            .meta("tmac.cfg.rope_theta", GgufValue::F32(10000.0))
            .meta("tmac.flag", GgufValue::Bool(true))
            .meta(
                "tmac.list",
                GgufValue::Array {
                    elem: 8,
                    items: vec![GgufValue::String("a".into()), GgufValue::String("b".into())],
                },
            );
        w.tensor_f32(
            "t.f32",
            &[4, 2],
            &[0.5, -1.5, 2.0, 0.0, 1.0, -2.0, 3.5, 4.0],
        )
        .unwrap();
        w.tensor("t.codes", &[6], GgmlType::I8, vec![1, 2, 3, 4, 5, 6])
            .unwrap();
        w
    }

    #[test]
    fn roundtrip_preserves_meta_and_tensors() {
        let bytes = sample().to_bytes();
        let f = GgufFile::parse(Arc::new(Mapping::from_bytes(&bytes))).unwrap();
        assert_eq!(f.version(), GGUF_VERSION);
        assert_eq!(f.meta("tmac.cfg.dim").unwrap().as_u64(), Some(64));
        assert_eq!(
            f.meta("tmac.cfg.rope_theta").unwrap().as_f32(),
            Some(10000.0)
        );
        assert_eq!(f.meta("general.name").unwrap().as_str(), Some("unit"));
        assert!(matches!(
            f.meta("tmac.list"),
            Some(GgufValue::Array { items, .. }) if items.len() == 2
        ));
        let t = f.tensor("t.f32").unwrap();
        assert_eq!(t.dims, vec![4, 2]);
        assert_eq!(
            f.tensor_f32("t.f32").unwrap(),
            vec![0.5, -1.5, 2.0, 0.0, 1.0, -2.0, 3.5, 4.0]
        );
        assert_eq!(f.tensor_bytes("t.codes").unwrap(), &[1, 2, 3, 4, 5, 6]);
        // Data blobs are aligned: the second tensor starts one aligned
        // stride after the first.
        assert_eq!(f.tensor("t.codes").unwrap().offset, align_up(32) as u64);
        assert!(f.tensor_checksum("t.codes").unwrap() != 0);
    }

    #[test]
    fn rewriting_parsed_content_is_byte_identical() {
        let bytes = sample().to_bytes();
        let f = GgufFile::parse(Arc::new(Mapping::from_bytes(&bytes))).unwrap();
        let mut w = GgufWriter::new();
        for (k, v) in f.meta_entries() {
            w.meta(k, v.clone());
        }
        for t in f.tensors() {
            w.tensor(
                &t.name,
                &t.dims,
                t.dtype,
                f.tensor_bytes(&t.name).unwrap().to_vec(),
            )
            .unwrap();
        }
        assert_eq!(w.to_bytes(), bytes);
    }

    #[test]
    fn bad_magic_version_truncation() {
        let bytes = sample().to_bytes();
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(matches!(
            GgufFile::parse(Arc::new(Mapping::from_bytes(&bad))),
            Err(IoError::BadMagic { .. })
        ));
        let mut bad = bytes.clone();
        bad[4] = 1; // GGUF v1 (u32 counts) is not supported
        assert!(matches!(
            GgufFile::parse(Arc::new(Mapping::from_bytes(&bad))),
            Err(IoError::Version { found: 1, .. })
        ));
        // The final cut lands inside the last tensor's payload (the file
        // tail is alignment padding, which parses fine when shortened).
        for cut in [3, 11, 40, bytes.len() - 30] {
            assert!(
                GgufFile::parse(Arc::new(Mapping::from_bytes(&bytes[..cut]))).is_err(),
                "cut at {cut} must fail"
            );
        }
    }

    #[test]
    fn unknown_tensor_types_parse_but_do_not_read() {
        // Hand-build a header with a Q4_K-style (id 12) tensor: the header
        // must parse (real-checkpoint compatibility), payload reads must
        // fail typed.
        let mut out = Vec::new();
        out.extend_from_slice(&GGUF_MAGIC);
        out.extend_from_slice(&3u32.to_le_bytes());
        out.extend_from_slice(&1u64.to_le_bytes()); // one tensor
        out.extend_from_slice(&0u64.to_le_bytes()); // no metadata
        put_string(&mut out, "w");
        out.extend_from_slice(&1u32.to_le_bytes()); // n_dims
        out.extend_from_slice(&256u64.to_le_bytes());
        out.extend_from_slice(&12u32.to_le_bytes()); // unknown type id
        out.extend_from_slice(&0u64.to_le_bytes()); // offset
        let f = GgufFile::parse(Arc::new(Mapping::from_bytes(&out))).unwrap();
        assert_eq!(f.tensors().len(), 1);
        assert_eq!(f.tensor("w").unwrap().dtype, GgmlType::Unknown(12));
        assert!(matches!(f.tensor_bytes("w"), Err(IoError::Unsupported(_))));
    }

    #[test]
    fn overflowing_header_dims_never_panic() {
        // Crafted headers with dims/offsets near u64::MAX must parse (or
        // fail) with typed errors, never overflow-panic or validate a
        // wrapped byte count.
        let mut out = Vec::new();
        out.extend_from_slice(&GGUF_MAGIC);
        out.extend_from_slice(&3u32.to_le_bytes());
        out.extend_from_slice(&1u64.to_le_bytes());
        out.extend_from_slice(&0u64.to_le_bytes());
        put_string(&mut out, "w");
        out.extend_from_slice(&2u32.to_le_bytes()); // n_dims
        out.extend_from_slice(&(1u64 << 63).to_le_bytes());
        out.extend_from_slice(&4u64.to_le_bytes());
        out.extend_from_slice(&0u32.to_le_bytes()); // F32
        out.extend_from_slice(&(u64::MAX - 8).to_le_bytes()); // offset
        match GgufFile::parse(Arc::new(Mapping::from_bytes(&out))) {
            Ok(f) => {
                // Saturated element count has no valid byte size.
                assert!(f.tensor_bytes("w").is_err());
            }
            Err(e) => {
                assert!(matches!(
                    e,
                    IoError::Corrupt(_) | IoError::Truncated { .. } | IoError::Unsupported(_)
                ));
            }
        }
    }

    #[test]
    fn writer_rejects_shape_disagreement() {
        let mut w = GgufWriter::new();
        assert!(matches!(
            w.tensor("x", &[3], GgmlType::F32, vec![0u8; 8]),
            Err(IoError::ShapeMismatch(_))
        ));
    }

    #[test]
    fn ggml_type_table() {
        for t in [
            GgmlType::F32,
            GgmlType::F16,
            GgmlType::Q8_0,
            GgmlType::I8,
            GgmlType::I32,
            GgmlType::Unknown(99),
        ] {
            assert_eq!(GgmlType::from_id(t.id()), t);
        }
        assert_eq!(GgmlType::F32.data_len(5), Some(20));
        assert_eq!(GgmlType::Q8_0.data_len(64), Some(68));
        assert_eq!(GgmlType::Q8_0.data_len(63), None, "ragged block");
        assert_eq!(GgmlType::Unknown(99).data_len(4), None);
    }
}
