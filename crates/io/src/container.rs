//! The native `.tmac` container: prepacked weights, mmap-loadable.
//!
//! Where GGUF stores *canonical* tensors that every consumer re-packs at
//! startup, `.tmac` stores weights **already in the offline-transformed
//! T-MAC layout** — the permuted bit-plane tile stream and tile-permuted
//! scales exactly as the kernels stream them ([`tmac_core::WeightPlan`]).
//! Loading is therefore a header parse plus an integrity sweep; the weight
//! bytes are borrowed zero-copy from the file mapping and never touched.
//!
//! # Layout (version 1, all integers little-endian)
//!
//! ```text
//! 0x00  magic    b"TMAC"
//! 0x04  version  u32 (= 1)
//! 0x08  index_len u64                  bytes of the index section
//! 0x10  index:
//!       meta_count u64
//!       meta entries: key (string), value-type u32, value
//!                     (GGUF value encoding; string = u64 len + UTF-8)
//!       tensor_count u64
//!       tensor entries:
//!         name (string), kind u8
//!         kind 0 (raw f32): n_dims u8, dims u64 × n_dims
//!         kind 1 (prepacked plan):
//!             m u64, k u64, bits u8, group_size u32, zero f32,
//!             opts: flags u8 (bit0 table_quant, 1 mirror, 2 tiling,
//!                   3 permute, 4 interleave, 5 fast_aggregation),
//!                   tile_k u32, n_block u32, row_block u32, kg_panel u32
//!         seg_count u8
//!         segments: role u8, offset u64 (absolute, 32-aligned),
//!                   byte_len u64, checksum u64 (FNV-1a)
//! align(32) data region: segment blobs, each 32-aligned
//! ```
//!
//! Segment roles: `0` = raw data / permuted index stream, `1` =
//! tile-permuted scales (`f32`), `2` = row-major padded scales (`f32`,
//! flat layouts), `3 + b` = flat nibble plane of bit `b`.

use crate::gguf::GgufValue;
use crate::{align_up, fnv1a64, put_string, Cursor, IoError, LoadMode, Mapping, DATA_ALIGN};
use std::path::Path;
use std::sync::Arc;
use tmac_core::{KernelOpts, Layout, PlanParts, Segment, TmacError, WeightPlan};
use tmac_quant::QuantizedMatrix;

/// The `.tmac` magic.
pub const TMAC_MAGIC: [u8; 4] = *b"TMAC";

/// The container version this build reads and writes.
pub const TMAC_VERSION: u32 = 1;

const ROLE_DATA: u8 = 0;
const ROLE_SCALES_PERM: u8 = 1;
const ROLE_SCALES_FLAT: u8 = 2;
const ROLE_FLAT_PLANE0: u8 = 3;

impl From<TmacError> for IoError {
    fn from(e: TmacError) -> Self {
        IoError::ShapeMismatch(e.to_string())
    }
}

/// Byte view of an `f32` slice (little-endian hosts; the container format
/// is little-endian, matching every supported target).
fn f32_bytes(v: &[f32]) -> &[u8] {
    // SAFETY: f32 -> u8 view, no alignment requirement on reads.
    unsafe { std::slice::from_raw_parts(v.as_ptr().cast(), v.len() * 4) }
}

/// What a tensor's data is, for the writer.
#[derive(Debug)]
pub enum TensorSource<'a> {
    /// A raw `f32` tensor (embeddings, norm gains).
    F32 {
        /// Dimensions (row-major; product = element count).
        dims: Vec<u64>,
        /// The data.
        data: &'a [f32],
    },
    /// A prepacked weight plan, serialized in kernel byte order.
    Plan(&'a WeightPlan),
}

/// One tensor to write.
#[derive(Debug)]
pub struct TensorSpec<'a> {
    /// Tensor name (llama.cpp-style names by convention).
    pub name: String,
    /// The data.
    pub source: TensorSource<'a>,
}

fn encode_opts(o: &KernelOpts, out: &mut Vec<u8>) {
    let flags = o.table_quant as u8
        | (o.mirror as u8) << 1
        | (o.tiling as u8) << 2
        | (o.permute as u8) << 3
        | (o.interleave as u8) << 4
        | (o.fast_aggregation as u8) << 5;
    out.push(flags);
    out.extend_from_slice(&(o.tile_k as u32).to_le_bytes());
    out.extend_from_slice(&(o.n_block as u32).to_le_bytes());
    out.extend_from_slice(&(o.row_block as u32).to_le_bytes());
    out.extend_from_slice(&(o.kg_panel as u32).to_le_bytes());
}

fn decode_opts(c: &mut Cursor<'_>, what: &str) -> Result<KernelOpts, IoError> {
    let flags = c.u8(what)?;
    if flags & !0x3F != 0 {
        return Err(IoError::Corrupt(format!("{what}: unknown option flags")));
    }
    Ok(KernelOpts {
        table_quant: flags & 1 != 0,
        mirror: flags & 2 != 0,
        tiling: flags & 4 != 0,
        permute: flags & 8 != 0,
        interleave: flags & 16 != 0,
        fast_aggregation: flags & 32 != 0,
        tile_k: c.u32(what)? as usize,
        n_block: c.u32(what)? as usize,
        row_block: c.u32(what)? as usize,
        kg_panel: c.u32(what)? as usize,
    })
}

/// Segments of one tensor, in serialization order.
fn plan_segments(plan: &WeightPlan) -> Vec<(u8, &[u8])> {
    match plan.layout() {
        Layout::Permuted { .. } => vec![
            (ROLE_DATA, plan.perm_stream_bytes()),
            (ROLE_SCALES_PERM, f32_bytes(plan.perm_scales())),
        ],
        Layout::Flat => {
            let mut segs = vec![(ROLE_SCALES_FLAT, f32_bytes(plan.flat_scales_padded()))];
            for bit in 0..plan.bits {
                segs.push((ROLE_FLAT_PLANE0 + bit as u8, plan.flat_plane(bit)));
            }
            segs
        }
    }
}

/// Writes a `.tmac` container.
///
/// # Errors
///
/// [`IoError::Io`] on filesystem failures; [`IoError::ShapeMismatch`] for
/// inconsistent tensor specs.
pub fn write_container(
    path: &Path,
    meta: &[(String, GgufValue)],
    tensors: &[TensorSpec<'_>],
) -> Result<(), IoError> {
    use std::io::Write;

    // Gather every tensor's segments (role, bytes) with checksums.
    let mut all_segs: Vec<Vec<(u8, &[u8], u64)>> = Vec::with_capacity(tensors.len());
    for t in tensors {
        let segs: Vec<(u8, &[u8])> = match &t.source {
            TensorSource::F32 { dims, data } => {
                let n: u64 = dims.iter().product();
                if n != data.len() as u64 {
                    return Err(IoError::ShapeMismatch(format!(
                        "tensor {}: dims {dims:?} vs {} elements",
                        t.name,
                        data.len()
                    )));
                }
                vec![(ROLE_DATA, f32_bytes(data))]
            }
            TensorSource::Plan(plan) => plan_segments(plan),
        };
        all_segs.push(
            segs.into_iter()
                .map(|(role, bytes)| (role, bytes, fnv1a64(bytes)))
                .collect(),
        );
    }

    // Serialize the index. Offsets are fixed-width, so the index length is
    // independent of their values: pass 1 uses zeros to learn the length,
    // pass 2 fills in the real 32-aligned data offsets.
    let serialize_index = |offsets: &[Vec<u64>]| -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&(meta.len() as u64).to_le_bytes());
        for (k, v) in meta {
            put_string(&mut out, k);
            out.extend_from_slice(&v.type_id().to_le_bytes());
            v.encode(&mut out);
        }
        out.extend_from_slice(&(tensors.len() as u64).to_le_bytes());
        for (ti, t) in tensors.iter().enumerate() {
            put_string(&mut out, &t.name);
            match &t.source {
                TensorSource::F32 { dims, .. } => {
                    out.push(0u8);
                    out.push(dims.len() as u8);
                    for d in dims {
                        out.extend_from_slice(&d.to_le_bytes());
                    }
                }
                TensorSource::Plan(plan) => {
                    out.push(1u8);
                    out.extend_from_slice(&(plan.m as u64).to_le_bytes());
                    out.extend_from_slice(&(plan.k as u64).to_le_bytes());
                    out.push(plan.bits as u8);
                    out.extend_from_slice(&(plan.group_size as u32).to_le_bytes());
                    out.extend_from_slice(&plan.zero.to_le_bytes());
                    encode_opts(&plan.opts, &mut out);
                }
            }
            out.push(all_segs[ti].len() as u8);
            for (si, (role, bytes, checksum)) in all_segs[ti].iter().enumerate() {
                out.push(*role);
                out.extend_from_slice(&offsets[ti][si].to_le_bytes());
                out.extend_from_slice(&(bytes.len() as u64).to_le_bytes());
                out.extend_from_slice(&checksum.to_le_bytes());
            }
        }
        out
    };

    let zeros: Vec<Vec<u64>> = all_segs.iter().map(|segs| vec![0u64; segs.len()]).collect();
    let index_len = serialize_index(&zeros).len();
    let data_start = align_up(16 + index_len);
    let mut offsets = zeros;
    let mut off = data_start as u64;
    for (ti, segs) in all_segs.iter().enumerate() {
        for (si, (_, bytes, _)) in segs.iter().enumerate() {
            offsets[ti][si] = off;
            off += align_up(bytes.len()) as u64;
        }
    }
    let index = serialize_index(&offsets);
    debug_assert_eq!(index.len(), index_len);

    let file = std::fs::File::create(path)
        .map_err(|e| IoError::Io(format!("create {}: {e}", path.display())))?;
    let mut w = std::io::BufWriter::new(file);
    let io = |e: std::io::Error| IoError::Io(format!("write {}: {e}", path.display()));
    w.write_all(&TMAC_MAGIC).map_err(io)?;
    w.write_all(&TMAC_VERSION.to_le_bytes()).map_err(io)?;
    w.write_all(&(index_len as u64).to_le_bytes()).map_err(io)?;
    w.write_all(&index).map_err(io)?;
    let pad = [0u8; DATA_ALIGN];
    w.write_all(&pad[..data_start - 16 - index_len])
        .map_err(io)?;
    for segs in &all_segs {
        for (_, bytes, _) in segs {
            w.write_all(bytes).map_err(io)?;
            w.write_all(&pad[..align_up(bytes.len()) - bytes.len()])
                .map_err(io)?;
        }
    }
    w.flush().map_err(io)
}

#[derive(Debug, Clone, Copy)]
struct SegEntry {
    role: u8,
    off: u64,
    len: u64,
    checksum: u64,
}

#[derive(Debug)]
enum TensorKind {
    F32 {
        dims: Vec<u64>,
    },
    Plan {
        m: usize,
        k: usize,
        bits: u8,
        group_size: usize,
        zero: f32,
        opts: KernelOpts,
    },
}

#[derive(Debug)]
struct TensorEntry {
    name: String,
    kind: TensorKind,
    segs: Vec<SegEntry>,
}

/// A parsed (and, via [`TmacContainer::open`], integrity-checked) `.tmac`
/// container.
#[derive(Debug)]
pub struct TmacContainer {
    map: Arc<Mapping>,
    meta: Vec<(String, GgufValue)>,
    tensors: Vec<TensorEntry>,
}

impl TmacContainer {
    /// Opens `path`, parses the index, and verifies every segment checksum.
    ///
    /// # Errors
    ///
    /// Typed [`IoError`]s: filesystem failures, truncation, bad magic,
    /// version mismatch, structural corruption, checksum failures.
    pub fn open(path: &Path, mode: LoadMode) -> Result<TmacContainer, IoError> {
        let c = Self::open_unverified(path, mode)?;
        c.verify()?;
        Ok(c)
    }

    /// [`TmacContainer::open`] without the data-checksum sweep (header
    /// structure is still fully validated). For measurements that want
    /// pure mapping cost; production loads should prefer `open`.
    ///
    /// # Errors
    ///
    /// Same contract as [`TmacContainer::open`], minus checksum failures.
    pub fn open_unverified(path: &Path, mode: LoadMode) -> Result<TmacContainer, IoError> {
        Self::parse(Arc::new(Mapping::open(path, mode)?))
    }

    /// Parses an in-memory image.
    ///
    /// # Errors
    ///
    /// Same contract as [`TmacContainer::open_unverified`].
    pub fn parse(map: Arc<Mapping>) -> Result<TmacContainer, IoError> {
        let bytes = map.bytes();
        let mut c = Cursor::new(bytes);
        let magic: [u8; 4] = c.take(4, "magic")?.try_into().unwrap();
        if magic != TMAC_MAGIC {
            return Err(IoError::BadMagic {
                expected: TMAC_MAGIC,
                found: magic,
            });
        }
        let version = c.u32("version")?;
        if version != TMAC_VERSION {
            return Err(IoError::Version {
                found: version,
                supported: "tmac v1",
            });
        }
        let index_len = c.u64("index length")? as usize;
        let index = c.take(index_len, "index")?;
        let mut c = Cursor::new(index);
        let meta_count = c.u64("metadata count")? as usize;
        if meta_count > 1 << 16 {
            return Err(IoError::Corrupt(format!(
                "implausible metadata count {meta_count}"
            )));
        }
        let mut meta = Vec::with_capacity(meta_count);
        for _ in 0..meta_count {
            let key = c.string("metadata key")?;
            let ty = c.u32("metadata value type")?;
            let value = GgufValue::decode(ty, &mut c, &format!("metadata {key:?}"))?;
            meta.push((key, value));
        }
        let tensor_count = c.u64("tensor count")? as usize;
        if tensor_count > 1 << 20 {
            return Err(IoError::Corrupt(format!(
                "implausible tensor count {tensor_count}"
            )));
        }
        let mut tensors = Vec::with_capacity(tensor_count.min(4096));
        for _ in 0..tensor_count {
            let name = c.string("tensor name")?;
            let what = format!("tensor {name}");
            let kind = match c.u8(&what)? {
                0 => {
                    let n_dims = c.u8(&what)? as usize;
                    if n_dims > 8 {
                        return Err(IoError::Corrupt(format!("{what}: {n_dims} dimensions")));
                    }
                    let mut dims = Vec::with_capacity(n_dims);
                    for _ in 0..n_dims {
                        dims.push(c.u64(&what)?);
                    }
                    TensorKind::F32 { dims }
                }
                1 => TensorKind::Plan {
                    m: c.u64(&what)? as usize,
                    k: c.u64(&what)? as usize,
                    bits: c.u8(&what)?,
                    group_size: c.u32(&what)? as usize,
                    zero: c.f32(&what)?,
                    opts: decode_opts(&mut c, &what)?,
                },
                other => {
                    return Err(IoError::Corrupt(format!(
                        "{what}: unknown tensor kind {other}"
                    )))
                }
            };
            let seg_count = c.u8(&what)? as usize;
            if seg_count == 0 || seg_count > 8 {
                return Err(IoError::Corrupt(format!("{what}: {seg_count} segments")));
            }
            let mut segs = Vec::with_capacity(seg_count);
            for _ in 0..seg_count {
                let seg = SegEntry {
                    role: c.u8(&what)?,
                    off: c.u64(&what)?,
                    len: c.u64(&what)?,
                    checksum: c.u64(&what)?,
                };
                let end = seg
                    .off
                    .checked_add(seg.len)
                    .ok_or_else(|| IoError::Corrupt(format!("{what}: segment overflow")))?;
                if end > bytes.len() as u64 {
                    return Err(IoError::Truncated {
                        what: format!("{what} data"),
                        need: seg.len as usize,
                        have: bytes
                            .len()
                            .saturating_sub(seg.off.min(bytes.len() as u64) as usize),
                    });
                }
                if !(seg.off as usize).is_multiple_of(DATA_ALIGN) {
                    return Err(IoError::Corrupt(format!(
                        "{what}: segment offset {} not {DATA_ALIGN}-aligned",
                        seg.off
                    )));
                }
                segs.push(seg);
            }
            tensors.push(TensorEntry { name, kind, segs });
        }
        Ok(TmacContainer { map, meta, tensors })
    }

    /// Verifies every segment's checksum against the data present.
    ///
    /// # Errors
    ///
    /// [`IoError::Checksum`] naming the first failing tensor.
    pub fn verify(&self) -> Result<(), IoError> {
        let bytes = self.map.bytes();
        for t in &self.tensors {
            for s in &t.segs {
                let data = &bytes[s.off as usize..(s.off + s.len) as usize];
                let found = match tmac_core::failpoint::fire("io/checksum") {
                    // Injected bit-rot: report a corrupted digest.
                    Some(tmac_core::failpoint::FailAction::Error) => !fnv1a64(data),
                    _ => fnv1a64(data),
                };
                if found != s.checksum {
                    return Err(IoError::Checksum {
                        tensor: format!("{} (segment role {})", t.name, s.role),
                        expected: s.checksum,
                        found,
                    });
                }
            }
        }
        Ok(())
    }

    /// All metadata, in file order.
    pub fn meta_entries(&self) -> &[(String, GgufValue)] {
        &self.meta
    }

    /// Looks up a metadata value.
    pub fn meta(&self, key: &str) -> Option<&GgufValue> {
        self.meta.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Tensor names, in file order.
    pub fn tensor_names(&self) -> Vec<&str> {
        self.tensors.iter().map(|t| t.name.as_str()).collect()
    }

    /// True if `name` exists and is a prepacked plan.
    pub fn is_plan(&self, name: &str) -> bool {
        matches!(
            self.entry(name),
            Ok(TensorEntry {
                kind: TensorKind::Plan { .. },
                ..
            })
        )
    }

    fn entry(&self, name: &str) -> Result<&TensorEntry, IoError> {
        self.tensors
            .iter()
            .find(|t| t.name == name)
            .ok_or_else(|| IoError::MissingTensor(name.into()))
    }

    fn seg(&self, t: &TensorEntry, role: u8) -> Result<SegEntry, IoError> {
        t.segs
            .iter()
            .find(|s| s.role == role)
            .copied()
            .ok_or_else(|| IoError::Corrupt(format!("{}: no segment with role {role}", t.name)))
    }

    /// Dimensions of a raw `f32` tensor.
    ///
    /// # Errors
    ///
    /// [`IoError::MissingTensor`] / [`IoError::ShapeMismatch`].
    pub fn f32_dims(&self, name: &str) -> Result<&[u64], IoError> {
        match &self.entry(name)?.kind {
            TensorKind::F32 { dims } => Ok(dims),
            TensorKind::Plan { .. } => Err(IoError::ShapeMismatch(format!(
                "{name} is a prepacked plan, not a raw f32 tensor"
            ))),
        }
    }

    /// Zero-copy `f32` view of a raw tensor.
    ///
    /// # Errors
    ///
    /// [`IoError::MissingTensor`] / [`IoError::ShapeMismatch`].
    pub fn f32_tensor(&self, name: &str) -> Result<&[f32], IoError> {
        let t = self.entry(name)?;
        let TensorKind::F32 { dims } = &t.kind else {
            return Err(IoError::ShapeMismatch(format!(
                "{name} is a prepacked plan, not a raw f32 tensor"
            )));
        };
        let seg = self.seg(t, ROLE_DATA)?;
        // Dims come from the file: all arithmetic checked so a crafted
        // index can neither wrap into a passing length check nor panic.
        let byte_len = dims
            .iter()
            .try_fold(1u64, |acc, &d| acc.checked_mul(d))
            .and_then(|n| n.checked_mul(4));
        if byte_len != Some(seg.len) {
            return Err(IoError::ShapeMismatch(format!(
                "{name}: {} data bytes for dims {dims:?}",
                seg.len
            )));
        }
        let bytes = &self.map.bytes()[seg.off as usize..(seg.off + seg.len) as usize];
        if !(bytes.as_ptr() as usize).is_multiple_of(4) {
            return Err(IoError::Corrupt(format!("{name}: misaligned f32 data")));
        }
        // SAFETY: length and 4-byte alignment checked; mapping outlives
        // the borrow.
        Ok(unsafe { std::slice::from_raw_parts(bytes.as_ptr().cast(), seg.len as usize / 4) })
    }

    /// Rebuilds the prepacked [`WeightPlan`] of tensor `name`, borrowing
    /// every data segment zero-copy from the container mapping.
    ///
    /// # Errors
    ///
    /// [`IoError::MissingTensor`] / [`IoError::ShapeMismatch`] when the
    /// metadata and segment lengths disagree.
    pub fn plan(&self, name: &str) -> Result<WeightPlan, IoError> {
        let t = self.entry(name)?;
        let TensorKind::Plan {
            m,
            k,
            bits,
            group_size,
            zero,
            opts,
        } = &t.kind
        else {
            return Err(IoError::ShapeMismatch(format!(
                "{name} is a raw f32 tensor, not a prepacked plan"
            )));
        };
        let owner: Arc<dyn tmac_core::PlanBacking> = self.map.clone();
        let borrow_u8 = |seg: SegEntry| -> Result<Segment<u8>, IoError> {
            Ok(Segment::borrowed(
                owner.clone(),
                seg.off as usize,
                seg.len as usize,
            )?)
        };
        let borrow_f32 = |seg: SegEntry| -> Result<Segment<f32>, IoError> {
            if !seg.len.is_multiple_of(4) {
                return Err(IoError::ShapeMismatch(format!(
                    "{name}: ragged f32 segment ({} bytes)",
                    seg.len
                )));
            }
            Ok(Segment::borrowed(
                owner.clone(),
                seg.off as usize,
                seg.len as usize / 4,
            )?)
        };
        let empty_u8 = || Segment::from_vec(Vec::new());
        let empty_f32 = || Segment::from_vec(Vec::new());

        let (flat_planes, perm_stream, scales_flat, scales_perm) = if opts.permute {
            (
                Vec::new(),
                borrow_u8(self.seg(t, ROLE_DATA)?)?,
                empty_f32(),
                borrow_f32(self.seg(t, ROLE_SCALES_PERM)?)?,
            )
        } else {
            let mut planes = Vec::with_capacity(*bits as usize);
            for bit in 0..*bits {
                planes.push(borrow_u8(self.seg(t, ROLE_FLAT_PLANE0 + bit)?)?);
            }
            (
                planes,
                empty_u8(),
                borrow_f32(self.seg(t, ROLE_SCALES_FLAT)?)?,
                empty_f32(),
            )
        };
        Ok(WeightPlan::from_parts(PlanParts {
            m: *m,
            k: *k,
            bits: *bits as usize,
            group_size: *group_size,
            zero: *zero,
            opts: *opts,
            flat_planes,
            perm_stream,
            scales_flat,
            scales_perm,
        })?)
    }

    /// Materializes the canonical quantized matrix of tensor `name` (the
    /// lazy fallback for backends that do not consume the prepacked
    /// layout — dequant, `f32`).
    ///
    /// # Errors
    ///
    /// Same contract as [`TmacContainer::plan`].
    pub fn quantized(&self, name: &str) -> Result<QuantizedMatrix, IoError> {
        Ok(self.plan(name)?.to_quantized())
    }

    /// Total bytes of tensor data (excluding index and padding).
    pub fn data_bytes(&self) -> u64 {
        self.tensors
            .iter()
            .flat_map(|t| t.segs.iter())
            .map(|s| s.len)
            .sum()
    }

    /// The underlying mapping (diagnostics: mapped vs copied).
    pub fn mapping(&self) -> &Mapping {
        &self.map
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tmac_quant::rtn;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("tmac-container-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn sample_plan(opts: KernelOpts) -> WeightPlan {
        let (m, k) = (40, 128);
        let w: Vec<f32> = (0..m * k).map(|i| ((i as f32) * 0.17).sin()).collect();
        let qm = rtn::quantize(&w, m, k, 2, 32).unwrap();
        WeightPlan::new(&qm, opts).unwrap()
    }

    fn write_sample(path: &std::path::Path, opts: KernelOpts) -> WeightPlan {
        let plan = sample_plan(opts);
        let gains: Vec<f32> = (0..16).map(|i| i as f32 * 0.25).collect();
        let meta = vec![
            ("tmac.cfg.dim".to_string(), GgufValue::U64(128)),
            ("general.name".to_string(), GgufValue::String("unit".into())),
        ];
        let tensors = vec![
            TensorSpec {
                name: "norm.weight".into(),
                source: TensorSource::F32 {
                    dims: vec![16],
                    data: &gains,
                },
            },
            TensorSpec {
                name: "w.weight".into(),
                source: TensorSource::Plan(&plan),
            },
        ];
        write_container(path, &meta, &tensors).unwrap();
        plan
    }

    #[test]
    fn roundtrip_permuted_plan_zero_copy() {
        let path = tmp("perm.tmac");
        let plan = write_sample(&path, KernelOpts::tmac());
        for mode in [LoadMode::Mmap, LoadMode::Copy] {
            let c = TmacContainer::open(&path, mode).unwrap();
            assert_eq!(c.meta("tmac.cfg.dim").unwrap().as_u64(), Some(128));
            assert_eq!(c.tensor_names(), vec!["norm.weight", "w.weight"]);
            assert!(c.is_plan("w.weight"));
            assert!(!c.is_plan("norm.weight"));
            let gains = c.f32_tensor("norm.weight").unwrap();
            assert_eq!(gains.len(), 16);
            assert_eq!(gains[4], 1.0);
            let loaded = c.plan("w.weight").unwrap();
            assert!(loaded.is_borrowed(), "prepacked load must be zero-copy");
            assert_eq!(loaded.perm_stream_bytes(), plan.perm_stream_bytes());
            assert_eq!(loaded.perm_scales(), plan.perm_scales());
            assert_eq!(loaded.opts, plan.opts);
            assert_eq!(loaded.to_quantized(), plan.to_quantized());
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn roundtrip_flat_plan() {
        let path = tmp("flat.tmac");
        let plan = write_sample(&path, KernelOpts::plus_table_quant());
        let c = TmacContainer::open(&path, LoadMode::Copy).unwrap();
        let loaded = c.plan("w.weight").unwrap();
        assert_eq!(loaded.layout(), Layout::Flat);
        for bit in 0..plan.bits {
            assert_eq!(loaded.flat_plane(bit), plan.flat_plane(bit));
        }
        assert_eq!(loaded.to_quantized(), plan.to_quantized());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn fault_injection_yields_typed_errors() {
        let path = tmp("fault.tmac");
        write_sample(&path, KernelOpts::tmac());
        let good = std::fs::read(&path).unwrap();

        // Bad magic.
        let mut bad = good.clone();
        bad[1] = b'X';
        std::fs::write(&path, &bad).unwrap();
        assert!(matches!(
            TmacContainer::open(&path, LoadMode::Copy),
            Err(IoError::BadMagic { .. })
        ));

        // Version mismatch.
        let mut bad = good.clone();
        bad[4] = 9;
        std::fs::write(&path, &bad).unwrap();
        assert!(matches!(
            TmacContainer::open(&path, LoadMode::Copy),
            Err(IoError::Version { found: 9, .. })
        ));

        // Truncation at various depths.
        for cut in [2, 10, 20, good.len() / 2, good.len() - 1] {
            std::fs::write(&path, &good[..cut]).unwrap();
            let err = TmacContainer::open(&path, LoadMode::Copy);
            assert!(err.is_err(), "cut at {cut} must fail");
        }

        // Data corruption: flip one byte in the last segment.
        let mut bad = good.clone();
        let n = bad.len();
        bad[n - 40] ^= 0x40;
        std::fs::write(&path, &bad).unwrap();
        assert!(matches!(
            TmacContainer::open(&path, LoadMode::Copy),
            Err(IoError::Checksum { .. })
        ));
        // ...which open_unverified tolerates (measurement mode).
        assert!(TmacContainer::open_unverified(&path, LoadMode::Copy).is_ok());

        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn crafted_overflow_dims_fail_typed() {
        // An F32 tensor whose dims are chosen so the *wrapping* product
        // `n * 4` equals the real segment length: with unchecked
        // arithmetic this passed validation and built a 2^62-element
        // slice over a 64-byte mapping (UB). It must be a typed error.
        let path = tmp("overflow.tmac");
        write_sample(&path, KernelOpts::tmac());
        let good = std::fs::read(&path).unwrap();
        let key = b"norm.weight";
        let pos = good
            .windows(key.len())
            .position(|w| w == key)
            .expect("tensor name in index");
        // name bytes, kind u8 (0), n_dims u8 (1), then the u64 dim.
        let dpos = pos + key.len() + 2;
        assert_eq!(
            &good[dpos..dpos + 8],
            &16u64.to_le_bytes(),
            "located the dim field"
        );
        let mut bad = good.clone();
        // 16 f32s = 64 bytes; (2^62 + 16) * 4 wraps to 64.
        bad[dpos..dpos + 8].copy_from_slice(&((1u64 << 62) + 16).to_le_bytes());
        std::fs::write(&path, &bad).unwrap();
        let c = TmacContainer::open(&path, LoadMode::Copy).unwrap();
        assert!(matches!(
            c.f32_tensor("norm.weight"),
            Err(IoError::ShapeMismatch(_))
        ));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn opts_codec_roundtrip() {
        for opts in [
            KernelOpts::tmac(),
            KernelOpts::tmac_mirror(),
            KernelOpts::tmac_fast_aggregation(),
            KernelOpts::tm_base(),
            KernelOpts::plus_tuning(512, 8),
        ] {
            let mut buf = Vec::new();
            encode_opts(&opts, &mut buf);
            let back = decode_opts(&mut Cursor::new(&buf), "opts").unwrap();
            assert_eq!(back, opts);
        }
    }

    #[test]
    fn writer_rejects_dim_disagreement() {
        let gains = vec![0f32; 8];
        let err = write_container(
            &tmp("bad.tmac"),
            &[],
            &[TensorSpec {
                name: "x".into(),
                source: TensorSource::F32 {
                    dims: vec![9],
                    data: &gains,
                },
            }],
        );
        assert!(matches!(err, Err(IoError::ShapeMismatch(_))));
    }
}
