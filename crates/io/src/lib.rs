//! Model container & I/O subsystem.
//!
//! T-MAC's deployment story rests on *offline* weight transformation
//! (paper §4, Figure 2 "OFFLINE"): weights are permuted, bit-sliced and
//! packed ahead of time so the online path is pure table lookup. This crate
//! is the persistence layer for that pipeline:
//!
//! * [`gguf`] — a GGUF-compatible reader/writer (magic, versioned header,
//!   string-keyed typed metadata, aligned tensor blobs). Sufficient to
//!   round-trip this repo's models and to parse real GGUF file headers.
//! * [`container`] — the native `.tmac` container: weights stored *already
//!   in the offline-transformed layout* (per-layer prepacked bit-plane tile
//!   streams + tile-permuted scales, exactly as `tmac_core`'s kernels
//!   consume them), plus quant/model configuration metadata and per-tensor
//!   checksums.
//! * [`mmap`] — a zero-copy loader: the container file is mapped read-only
//!   and weight segments borrow straight from the mapping
//!   ([`tmac_core::Segment`]), so loading a prepacked model costs a header
//!   parse + checksum sweep instead of quantize-and-repack.
//!
//! Corrupt inputs never panic: every failure mode (truncation, bad magic,
//! version or checksum mismatch, shape/config disagreement) is a typed
//! [`IoError`] variant.

pub mod container;
pub mod gguf;
pub mod mmap;

pub use container::{write_container, TensorSource, TensorSpec, TmacContainer};
pub use gguf::{GgmlType, GgufFile, GgufTensorInfo, GgufValue, GgufWriter};
pub use mmap::{LoadMode, Mapping};

/// Alignment of every tensor-data blob in both file formats, in bytes.
/// 32 matches GGUF's default `general.alignment` and guarantees that `f32`
/// (and wider) views into a page-aligned mapping are naturally aligned.
pub const DATA_ALIGN: usize = 32;

/// Errors from container parsing, validation, or the underlying filesystem.
#[derive(Debug)]
pub enum IoError {
    /// Underlying filesystem error, with context.
    Io(String),
    /// The input ended before a required field or blob.
    Truncated {
        /// What was being read.
        what: String,
        /// Bytes required.
        need: usize,
        /// Bytes available.
        have: usize,
    },
    /// The file does not start with the expected magic.
    BadMagic {
        /// The magic the parser expected.
        expected: [u8; 4],
        /// The bytes found instead.
        found: [u8; 4],
    },
    /// Unsupported format version.
    Version {
        /// Version found in the header.
        found: u32,
        /// Versions this build understands.
        supported: &'static str,
    },
    /// A tensor blob failed its integrity check.
    Checksum {
        /// Tensor (and segment) the mismatch was detected in.
        tensor: String,
        /// Checksum recorded in the index.
        expected: u64,
        /// Checksum of the bytes actually present.
        found: u64,
    },
    /// Structurally malformed input (bad tag, bad UTF-8, bad count...).
    Corrupt(String),
    /// Tensor shape/metadata disagree with the model configuration.
    ShapeMismatch(String),
    /// A tensor required by the loader is absent.
    MissingTensor(String),
    /// A metadata key required by the loader is absent or mistyped.
    MissingMeta(String),
    /// The data is well-formed but this build cannot consume it (e.g. an
    /// unknown GGML tensor type's payload).
    Unsupported(String),
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(msg) => write!(f, "io: {msg}"),
            IoError::Truncated { what, need, have } => {
                write!(f, "truncated file: {what} needs {need} bytes, {have} left")
            }
            IoError::BadMagic { expected, found } => write!(
                f,
                "bad magic: expected {:?}, found {:?}",
                String::from_utf8_lossy(expected),
                found
            ),
            IoError::Version { found, supported } => {
                write!(f, "unsupported version {found} (supported: {supported})")
            }
            IoError::Checksum {
                tensor,
                expected,
                found,
            } => write!(
                f,
                "checksum mismatch in {tensor}: index says {expected:#018x}, data hashes to {found:#018x}"
            ),
            IoError::Corrupt(msg) => write!(f, "corrupt container: {msg}"),
            IoError::ShapeMismatch(msg) => write!(f, "shape mismatch: {msg}"),
            IoError::MissingTensor(name) => write!(f, "missing tensor {name:?}"),
            IoError::MissingMeta(key) => write!(f, "missing/mistyped metadata {key:?}"),
            IoError::Unsupported(msg) => write!(f, "unsupported: {msg}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e.to_string())
    }
}

/// FNV-1a 64-bit hash — the per-tensor integrity checksum. Not
/// cryptographic; it catches the corruption classes a container cares
/// about (bit flips, truncated/overwritten blobs, transposed segments).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Rounds `n` up to the next multiple of [`DATA_ALIGN`].
pub(crate) fn align_up(n: usize) -> usize {
    n.div_ceil(DATA_ALIGN) * DATA_ALIGN
}

/// Little-endian byte cursor over a parsed buffer; every read is
/// bounds-checked and produces [`IoError::Truncated`] instead of panicking.
pub(crate) struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    pub fn pos(&self) -> usize {
        self.pos
    }

    pub fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], IoError> {
        let have = self.buf.len().saturating_sub(self.pos);
        if n > have {
            return Err(IoError::Truncated {
                what: what.into(),
                need: n,
                have,
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub fn u8(&mut self, what: &str) -> Result<u8, IoError> {
        Ok(self.take(1, what)?[0])
    }

    pub fn u16(&mut self, what: &str) -> Result<u16, IoError> {
        Ok(u16::from_le_bytes(self.take(2, what)?.try_into().unwrap()))
    }

    pub fn u32(&mut self, what: &str) -> Result<u32, IoError> {
        Ok(u32::from_le_bytes(self.take(4, what)?.try_into().unwrap()))
    }

    pub fn u64(&mut self, what: &str) -> Result<u64, IoError> {
        Ok(u64::from_le_bytes(self.take(8, what)?.try_into().unwrap()))
    }

    pub fn f32(&mut self, what: &str) -> Result<f32, IoError> {
        Ok(f32::from_le_bytes(self.take(4, what)?.try_into().unwrap()))
    }

    pub fn f64(&mut self, what: &str) -> Result<f64, IoError> {
        Ok(f64::from_le_bytes(self.take(8, what)?.try_into().unwrap()))
    }

    /// A length-prefixed UTF-8 string (u64 length, GGUF convention).
    pub fn string(&mut self, what: &str) -> Result<String, IoError> {
        let len = self.u64(what)? as usize;
        if len > 1 << 24 {
            return Err(IoError::Corrupt(format!(
                "{what}: implausible string length {len}"
            )));
        }
        let bytes = self.take(len, what)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| IoError::Corrupt(format!("{what}: invalid UTF-8")))
    }
}

/// Appends a length-prefixed UTF-8 string (u64 length, GGUF convention).
pub(crate) fn put_string(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u64).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_known_vectors() {
        // FNV-1a 64 reference values.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_ne!(fnv1a64(b"ab"), fnv1a64(b"ba"));
    }

    #[test]
    fn cursor_reads_and_truncates() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&7u32.to_le_bytes());
        put_string(&mut buf, "hi");
        let mut c = Cursor::new(&buf);
        assert_eq!(c.u32("x").unwrap(), 7);
        assert_eq!(c.string("s").unwrap(), "hi");
        assert!(matches!(
            c.u64("tail"),
            Err(IoError::Truncated { need: 8, .. })
        ));
    }

    #[test]
    fn cursor_rejects_bad_utf8_and_huge_strings() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&2u64.to_le_bytes());
        buf.extend_from_slice(&[0xff, 0xfe]);
        assert!(matches!(
            Cursor::new(&buf).string("s"),
            Err(IoError::Corrupt(_))
        ));
        let mut buf = Vec::new();
        buf.extend_from_slice(&(u64::MAX).to_le_bytes());
        assert!(matches!(
            Cursor::new(&buf).string("s"),
            Err(IoError::Corrupt(_))
        ));
    }

    #[test]
    fn align_rounds_up() {
        assert_eq!(align_up(0), 0);
        assert_eq!(align_up(1), 32);
        assert_eq!(align_up(32), 32);
        assert_eq!(align_up(33), 64);
    }

    #[test]
    fn error_display_is_informative() {
        let e = IoError::Checksum {
            tensor: "blk.0.attn_q.weight".into(),
            expected: 1,
            found: 2,
        };
        assert!(e.to_string().contains("attn_q"));
        assert!(IoError::from(std::io::Error::other("x"))
            .to_string()
            .contains("io:"));
    }
}
