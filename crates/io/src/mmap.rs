//! Read-only file mappings for zero-copy container loading.
//!
//! [`Mapping`] is the backing store every loaded container hands to
//! `tmac_core`'s borrowed [`tmac_core::Segment`]s: on Unix it is a real
//! `mmap(PROT_READ, MAP_PRIVATE)` of the file (called through a local FFI
//! declaration — no external crates are available offline), so weight tiles
//! are demand-paged straight from the page cache and never copied into the
//! process heap. [`LoadMode::Copy`] (and every non-Unix host) falls back to
//! an owned, 8-byte-aligned heap buffer with identical semantics — the
//! owned-copy twin the equivalence tests compare the mapped path against.

use crate::IoError;
use std::fs::File;
use std::io::Read;
use std::path::Path;
use tmac_core::failpoint::{self, FailAction};

/// How a container file is brought into memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LoadMode {
    /// Map the file read-only and borrow tensor data zero-copy (Unix;
    /// silently equivalent to `Copy` on hosts without `mmap`).
    #[default]
    Mmap,
    /// Read the whole file into an owned aligned buffer.
    Copy,
}

#[cfg(unix)]
mod sys {
    use std::ffi::{c_int, c_void};

    // Local declarations of the libc symbols std already links; the `libc`
    // crate is unavailable offline. Values are identical on Linux and the
    // BSD/macOS family.
    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> c_int;
    }

    pub const PROT_READ: c_int = 1;
    pub const MAP_PRIVATE: c_int = 2;
}

#[derive(Debug)]
enum Inner {
    /// A live `mmap` region (page-aligned, read-only).
    #[cfg(unix)]
    Mapped { ptr: *mut u8, len: usize },
    /// An owned buffer. Backed by `u64` words so the base address is
    /// 8-byte aligned and in-file 32-byte alignment carries over to `f32`
    /// views, exactly as it does for a page-aligned mapping.
    Owned { buf: Vec<u64>, len: usize },
}

/// A read-only view of a whole container file.
#[derive(Debug)]
pub struct Mapping {
    inner: Inner,
}

// SAFETY: the region is immutable for the life of the mapping (read-only
// private mapping / owned buffer), so shared access is safe.
unsafe impl Send for Mapping {}
unsafe impl Sync for Mapping {}

impl Mapping {
    /// Opens `path` under the requested mode.
    ///
    /// # Errors
    ///
    /// Returns [`IoError::Io`] on filesystem or mapping failures.
    pub fn open(path: &Path, mode: LoadMode) -> Result<Mapping, IoError> {
        match mode {
            LoadMode::Copy => Self::open_copied(path),
            LoadMode::Mmap => Self::open_mapped(path),
        }
    }

    #[cfg(unix)]
    fn open_mapped(path: &Path) -> Result<Mapping, IoError> {
        use std::os::unix::io::AsRawFd;
        if failpoint::fire("io/mmap") == Some(FailAction::Error) {
            return Err(IoError::Io(format!(
                "mmap {}: injected fault",
                path.display()
            )));
        }
        let file =
            File::open(path).map_err(|e| IoError::Io(format!("open {}: {e}", path.display())))?;
        let len = file
            .metadata()
            .map_err(|e| IoError::Io(format!("stat {}: {e}", path.display())))?
            .len() as usize;
        if len == 0 {
            return Ok(Mapping {
                inner: Inner::Owned {
                    buf: Vec::new(),
                    len: 0,
                },
            });
        }
        // SAFETY: len > 0, the fd is valid and open for reading; a private
        // read-only mapping of an immutable region. The fd may be closed
        // after mmap returns (POSIX keeps the mapping alive).
        let ptr = unsafe {
            sys::mmap(
                std::ptr::null_mut(),
                len,
                sys::PROT_READ,
                sys::MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr as usize == usize::MAX {
            return Err(IoError::Io(format!(
                "mmap {} ({len} bytes) failed",
                path.display()
            )));
        }
        Ok(Mapping {
            inner: Inner::Mapped {
                ptr: ptr.cast(),
                len,
            },
        })
    }

    #[cfg(not(unix))]
    fn open_mapped(path: &Path) -> Result<Mapping, IoError> {
        Self::open_copied(path)
    }

    fn open_copied(path: &Path) -> Result<Mapping, IoError> {
        if failpoint::fire("io/read") == Some(FailAction::Error) {
            return Err(IoError::Io(format!(
                "read {}: injected fault",
                path.display()
            )));
        }
        let mut file =
            File::open(path).map_err(|e| IoError::Io(format!("open {}: {e}", path.display())))?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)
            .map_err(|e| IoError::Io(format!("read {}: {e}", path.display())))?;
        Ok(Self::from_bytes(&bytes))
    }

    /// Wraps an in-memory image in an owned (aligned) mapping — used by
    /// tests and by writers that verify what they just serialized.
    pub fn from_bytes(bytes: &[u8]) -> Mapping {
        let mut buf = vec![0u64; bytes.len().div_ceil(8)];
        // SAFETY: buf holds at least bytes.len() bytes; both regions are
        // distinct allocations.
        unsafe {
            std::ptr::copy_nonoverlapping(bytes.as_ptr(), buf.as_mut_ptr().cast(), bytes.len());
        }
        Mapping {
            inner: Inner::Owned {
                buf,
                len: bytes.len(),
            },
        }
    }

    /// The mapped bytes.
    pub fn bytes(&self) -> &[u8] {
        match &self.inner {
            #[cfg(unix)]
            // SAFETY: ptr/len come from a successful mmap that lives until
            // drop; the region is never written.
            Inner::Mapped { ptr, len } => unsafe { std::slice::from_raw_parts(*ptr, *len) },
            Inner::Owned { buf, len } => {
                // SAFETY: buf holds at least `len` initialized bytes.
                unsafe { std::slice::from_raw_parts(buf.as_ptr().cast(), *len) }
            }
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        match &self.inner {
            #[cfg(unix)]
            Inner::Mapped { len, .. } => *len,
            Inner::Owned { len, .. } => *len,
        }
    }

    /// True when no bytes are mapped.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True when this is a real file mapping (not an owned copy).
    pub fn is_mapped(&self) -> bool {
        match &self.inner {
            #[cfg(unix)]
            Inner::Mapped { .. } => true,
            Inner::Owned { .. } => false,
        }
    }
}

impl Drop for Mapping {
    fn drop(&mut self) {
        #[cfg(unix)]
        if let Inner::Mapped { ptr, len } = self.inner {
            // SAFETY: exactly the region returned by mmap; unmapped once.
            unsafe {
                sys::munmap(ptr.cast(), len);
            }
        }
    }
}

impl tmac_core::PlanBacking for Mapping {
    fn bytes(&self) -> &[u8] {
        Mapping::bytes(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("tmac-io-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn mmap_and_copy_see_identical_bytes() {
        let path = tmp("map.bin");
        let data: Vec<u8> = (0..1000u32).flat_map(|i| i.to_le_bytes()).collect();
        std::fs::write(&path, &data).unwrap();
        let mapped = Mapping::open(&path, LoadMode::Mmap).unwrap();
        let copied = Mapping::open(&path, LoadMode::Copy).unwrap();
        assert_eq!(mapped.bytes(), &data[..]);
        assert_eq!(copied.bytes(), &data[..]);
        assert_eq!(mapped.len(), copied.len());
        assert!(!copied.is_mapped());
        #[cfg(unix)]
        assert!(mapped.is_mapped());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn copy_buffer_is_word_aligned() {
        let m = Mapping::from_bytes(&[1, 2, 3, 4, 5]);
        assert_eq!(m.bytes(), &[1, 2, 3, 4, 5]);
        assert!((m.bytes().as_ptr() as usize).is_multiple_of(8));
        assert!(!m.is_empty());
        assert!(Mapping::from_bytes(&[]).is_empty());
    }

    #[test]
    fn missing_file_is_a_typed_error() {
        let err = Mapping::open(Path::new("/nonexistent/tmac.bin"), LoadMode::Mmap);
        assert!(matches!(err, Err(IoError::Io(_))));
    }
}
