//! Power and energy model (paper §5.4, Figure 9, Table 5).
//!
//! The paper measures package power with `powermetrics` and integrates over
//! the generation run. Offline, power is modelled as
//!
//! ```text
//! P = idle + cores_used · core_w · intensity
//! ```
//!
//! where `intensity` reflects the instruction mix: T-MAC's lookup+add inner
//! loop draws measurably less per-core power than the multiply/dequant mix
//! (the paper observes 10–17% lower package power at equal thread counts).
//! Energy per token is then `P · seconds_per_token` — the paper's large
//! energy savings (20–60%) come from the latency term, amplified by the
//! small power term, and the model reproduces exactly that structure.

use crate::profiles::{CpuProfile, GpuProfile};

/// Instruction-mix intensity factors.
///
/// Ratio chosen to match the paper's observed 10.3% (Llama) to 17.3%
/// (BitNet) package-power reduction at equal threads.
pub mod intensity {
    /// Dequantization kernels (multiply-heavy).
    pub const DEQUANT: f64 = 1.0;
    /// T-MAC LUT kernels (lookup+add).
    pub const TMAC: f64 = 0.82;
}

/// Package power for a CPU run.
pub fn cpu_power_w(cpu: &CpuProfile, threads: usize, intensity: f64) -> f64 {
    let cores = threads.min(cpu.cores) as f64;
    cpu.idle_w + cores * cpu.core_w * intensity
}

/// Package power for a GPU run.
pub fn gpu_power_w(gpu: &GpuProfile) -> f64 {
    gpu.idle_w + gpu.active_w
}

/// Joules per token given power and throughput.
pub fn joules_per_token(power_w: f64, tokens_per_sec: f64) -> f64 {
    power_w / tokens_per_sec
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles::{JETSON_AGX_ORIN, M2_ULTRA, ORIN_AGX_GPU};

    #[test]
    fn tmac_power_is_lower_at_equal_threads() {
        let pd = cpu_power_w(&M2_ULTRA, 8, intensity::DEQUANT);
        let pt = cpu_power_w(&M2_ULTRA, 8, intensity::TMAC);
        let reduction = 1.0 - pt / pd;
        // Paper Figure 9: 10.3%-17.3% power reduction.
        assert!(
            (0.05..0.25).contains(&reduction),
            "power reduction {reduction}"
        );
    }

    #[test]
    fn energy_follows_throughput() {
        let p = cpu_power_w(&JETSON_AGX_ORIN, 12, intensity::TMAC);
        let fast = joules_per_token(p, 15.0);
        let slow = joules_per_token(p, 7.0);
        assert!(fast < slow);
    }

    #[test]
    fn orin_power_magnitudes_plausible() {
        // Paper Table 5: llama.cpp CPU 15.0 W, GPU 30.8 W, T-MAC 10.4 W.
        let cpu_dequant = cpu_power_w(&JETSON_AGX_ORIN, 12, intensity::DEQUANT);
        let cpu_tmac = cpu_power_w(&JETSON_AGX_ORIN, 12, intensity::TMAC);
        let gpu = gpu_power_w(&ORIN_AGX_GPU);
        assert!((10.0..40.0).contains(&cpu_dequant));
        assert!(cpu_tmac < cpu_dequant);
        assert!(gpu > cpu_dequant);
    }
}
