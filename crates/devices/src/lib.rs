//! Edge-device profiles and performance/energy projection models.
//!
//! The paper evaluates on seven physical devices plus their GPUs and NPUs
//! (Tables 2, 5, 6, 7; Figures 6–9, 11). This reproduction measures real
//! kernels on one local x86-64 host; cross-device series are produced by
//! the roofline models here, parameterized with the paper's device
//! specifications and calibrated against the local measurements (see
//! `DESIGN.md`, substitution table).
//!
//! * [`profiles`] — device parameter sets (paper Tables 2 & 6).
//! * [`project`] — CPU/GPU/NPU latency and throughput projection.
//! * [`energy`] — power and J/token model (paper Figure 9, Table 5).
//!
//! # Examples
//!
//! ```
//! use tmac_devices::{profiles, project};
//! use tmac_core::KernelOpts;
//!
//! let cost = project::LLAMA2_7B.tmac_cost(2, &KernelOpts::tmac());
//! let tps = project::cpu_tokens_per_sec(
//!     &profiles::JETSON_AGX_ORIN,
//!     &cost,
//!     12,
//!     project::Calibration::unit(),
//!     0.25,
//! );
//! assert!(tps > 1.0);
//! ```

pub mod energy;
pub mod profiles;
pub mod project;

pub use profiles::{CpuProfile, GpuProfile, NpuProfile};
pub use project::{Calibration, ModelShape};
