//! Device profiles (paper Tables 2 and 6).
//!
//! Each profile captures the handful of parameters the projection models
//! need: core count/frequency, SIMD lookup throughput, and memory
//! bandwidth. Peak bandwidth numbers are the paper's Table 2; the sustained
//! fraction reflects what a CPU-cluster stream achieves (unified-memory SoCs
//! never give the CPU the full fabric bandwidth — notably M2-Ultra's
//! 819 GB/s fabric feeds the CPU cluster only a fraction).

/// CPU profile of one evaluation device.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuProfile {
    /// Device name as used in the paper's tables.
    pub name: &'static str,
    /// Cores used in the experiments ("Used Cores" of Table 6).
    pub cores: usize,
    /// Sustained clock in GHz.
    pub freq_ghz: f64,
    /// SIMD register width in bytes (16 NEON, 32 AVX2).
    pub simd_bytes: usize,
    /// Effective SIMD instructions per cycle for the lookup+accumulate mix
    /// (Apple's wide NEON front-end sustains ~3, Cortex-A ~2, AVX2 desktop
    /// cores ~1.5 with one shuffle port).
    pub simd_ipc: f64,
    /// Peak memory bandwidth, GB/s (Table 2).
    pub peak_bw_gbs: f64,
    /// Fraction of peak a CPU streaming kernel sustains.
    pub sustained_bw_frac: f64,
    /// Idle (package baseline) power in watts.
    pub idle_w: f64,
    /// Incremental power per active core at full tilt, watts.
    pub core_w: f64,
}

/// Apple M2-Ultra (Mac Studio), 16 performance cores, 819.2 GB/s fabric.
pub const M2_ULTRA: CpuProfile = CpuProfile {
    name: "M2-Ultra",
    cores: 16,
    freq_ghz: 3.5,
    simd_bytes: 16,
    simd_ipc: 3.0,
    peak_bw_gbs: 819.2,
    sustained_bw_frac: 0.30,
    idle_w: 15.0,
    core_w: 3.0,
};

/// Raspberry Pi 5: 4 × Cortex-A76 @ 2.4 GHz, 17.1 GB/s LPDDR4X.
pub const RASPBERRY_PI5: CpuProfile = CpuProfile {
    name: "Raspberry Pi 5",
    cores: 4,
    freq_ghz: 2.4,
    simd_bytes: 16,
    simd_ipc: 2.0,
    peak_bw_gbs: 17.1,
    sustained_bw_frac: 0.75,
    idle_w: 2.5,
    core_w: 1.3,
};

/// Jetson AGX Orin: 12 × Cortex-A78AE @ 2.2 GHz, 204.8 GB/s shared LPDDR5.
pub const JETSON_AGX_ORIN: CpuProfile = CpuProfile {
    name: "Jetson AGX Orin",
    cores: 12,
    freq_ghz: 2.2,
    simd_bytes: 16,
    simd_ipc: 2.0,
    peak_bw_gbs: 204.8,
    sustained_bw_frac: 0.40,
    idle_w: 8.0,
    core_w: 1.8,
};

/// Surface Book 3: Intel i5-1035G7 (Ice Lake), 4 cores, AVX2, 58.2 GB/s.
pub const SURFACE_BOOK3: CpuProfile = CpuProfile {
    name: "Surface Book 3",
    cores: 4,
    freq_ghz: 3.3,
    simd_bytes: 32,
    simd_ipc: 1.5,
    peak_bw_gbs: 58.2,
    sustained_bw_frac: 0.55,
    idle_w: 5.0,
    core_w: 4.0,
};

/// Surface Laptop 7: Snapdragon X Elite, 4 of 12 Oryon cores used
/// (Table 6), ~135 GB/s LPDDR5X.
pub const SURFACE_LAPTOP7: CpuProfile = CpuProfile {
    name: "Surface Laptop 7",
    cores: 4,
    freq_ghz: 3.8,
    simd_bytes: 16,
    simd_ipc: 3.0,
    peak_bw_gbs: 135.0,
    sustained_bw_frac: 0.60,
    idle_w: 4.0,
    core_w: 3.5,
};

/// OnePlus 12: Snapdragon 8 Gen 3, 1 × X4 + 5 × A720 used, 76.8 GB/s.
pub const ONEPLUS_12: CpuProfile = CpuProfile {
    name: "OnePlus 12",
    cores: 6,
    freq_ghz: 3.0,
    simd_bytes: 16,
    simd_ipc: 2.0,
    peak_bw_gbs: 76.8,
    sustained_bw_frac: 0.55,
    idle_w: 2.0,
    core_w: 2.2,
};

/// Jetson Orin NX: 6 of 8 Cortex-A78AE used, 102.4 GB/s.
pub const JETSON_ORIN_NX: CpuProfile = CpuProfile {
    name: "Jetson Orin NX",
    cores: 6,
    freq_ghz: 2.0,
    simd_bytes: 16,
    simd_ipc: 2.0,
    peak_bw_gbs: 102.4,
    sustained_bw_frac: 0.45,
    idle_w: 5.0,
    core_w: 1.5,
};

/// All CPU profiles, in the paper's device order (Table 2 then Table 6).
pub const ALL_CPUS: [CpuProfile; 7] = [
    M2_ULTRA,
    RASPBERRY_PI5,
    JETSON_AGX_ORIN,
    SURFACE_BOOK3,
    SURFACE_LAPTOP7,
    ONEPLUS_12,
    JETSON_ORIN_NX,
];

/// GPU profile for the llama.cpp GPU baselines.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuProfile {
    /// Device name.
    pub name: &'static str,
    /// Peak memory bandwidth (shared with the CPU on these SoCs), GB/s.
    pub peak_bw_gbs: f64,
    /// Fraction of peak the dequant GEMV kernels sustain.
    pub sustained_bw_frac: f64,
    /// Per-kernel launch overhead in microseconds.
    pub launch_us: f64,
    /// Active power at full tilt, watts.
    pub active_w: f64,
    /// Idle contribution, watts.
    pub idle_w: f64,
}

/// Jetson AGX Orin's Ampere GPU (llama.cpp CUDA backend).
pub const ORIN_AGX_GPU: GpuProfile = GpuProfile {
    name: "Orin AGX GPU (CUDA)",
    peak_bw_gbs: 204.8,
    sustained_bw_frac: 0.70,
    launch_us: 12.0,
    active_w: 25.0,
    idle_w: 6.0,
};

/// Jetson Orin NX's Ampere GPU.
pub const ORIN_NX_GPU: GpuProfile = GpuProfile {
    name: "Orin NX GPU (CUDA)",
    peak_bw_gbs: 102.4,
    sustained_bw_frac: 0.65,
    launch_us: 12.0,
    active_w: 18.0,
    idle_w: 5.0,
};

/// OnePlus 12's Adreno 750 via llama.cpp's OpenCL backend — the paper
/// measures it at 1.6–1.7 tok/s for 7B, i.e. the backend sustains only a
/// tiny fraction of bandwidth.
pub const ADRENO_750_GPU: GpuProfile = GpuProfile {
    name: "Adreno 750 (OpenCL)",
    peak_bw_gbs: 76.8,
    sustained_bw_frac: 0.045,
    launch_us: 60.0,
    active_w: 8.0,
    idle_w: 1.5,
};

/// NPU throughput entries (paper Table 7, "sourced from official data
/// released by Qualcomm via Qualcomm AI Hub"). The paper deduces 2-bit NPU
/// performance from the 4-bit number (marked `*`), so one constant serves
/// both bit-widths.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NpuProfile {
    /// Device name.
    pub name: &'static str,
    /// Official Llama-2-7B-4bit tokens/s.
    pub tokens_per_sec_7b_4bit: f64,
}

/// Hexagon NPU in Surface Laptop 7 (Snapdragon X Elite, 45 TOPS).
pub const HEXAGON_X_ELITE: NpuProfile = NpuProfile {
    name: "Hexagon (X Elite, 45 TOPS)",
    tokens_per_sec_7b_4bit: 10.40,
};

/// Hexagon NPU in OnePlus 12 (Snapdragon 8 Gen 3, 15 TOPS).
pub const HEXAGON_8GEN3: NpuProfile = NpuProfile {
    name: "Hexagon (8 Gen 3, 15 TOPS)",
    tokens_per_sec_7b_4bit: 11.30,
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_are_physical() {
        for p in ALL_CPUS {
            assert!(
                p.cores > 0 && p.freq_ghz > 0.5 && p.freq_ghz < 6.0,
                "{}",
                p.name
            );
            assert!(p.simd_bytes == 16 || p.simd_bytes == 32, "{}", p.name);
            assert!(
                p.peak_bw_gbs > 5.0 && p.sustained_bw_frac <= 1.0,
                "{}",
                p.name
            );
            assert!(p.idle_w > 0.0 && p.core_w > 0.0, "{}", p.name);
        }
    }

    #[test]
    fn bandwidths_match_table2() {
        assert_eq!(M2_ULTRA.peak_bw_gbs, 819.2);
        assert_eq!(RASPBERRY_PI5.peak_bw_gbs, 17.1);
        assert_eq!(JETSON_AGX_ORIN.peak_bw_gbs, 204.8);
        assert_eq!(SURFACE_BOOK3.peak_bw_gbs, 58.2);
    }

    #[test]
    fn npu_numbers_match_table7() {
        assert_eq!(HEXAGON_X_ELITE.tokens_per_sec_7b_4bit, 10.40);
        assert_eq!(HEXAGON_8GEN3.tokens_per_sec_7b_4bit, 11.30);
    }

    #[test]
    fn device_ordering_by_bandwidth_is_m2_first() {
        let max = ALL_CPUS
            .iter()
            .map(|p| p.peak_bw_gbs)
            .fold(0.0f64, f64::max);
        assert_eq!(max, M2_ULTRA.peak_bw_gbs);
    }
}
