//! Latency/throughput projection models.
//!
//! A kernel execution is characterized by the op/byte counts from
//! `tmac_core::cost`; a device by its [`CpuProfile`]/[`GpuProfile`]. The
//! projection is a two-term roofline:
//!
//! ```text
//! t = max( lane_ops / (cores · freq · ipc · simd_bytes),
//!          dram_bytes / (peak_bw · sustained_frac) )  ·  1/efficiency
//! ```
//!
//! `efficiency` is a single calibration scalar obtained by running the real
//! kernel locally and dividing model time by measured time — it captures
//! everything the roofline abstracts away (issue stalls, prefetch quality),
//! and is assumed device-independent because the kernel structure is.

use crate::profiles::{CpuProfile, GpuProfile, NpuProfile};
use tmac_core::cost::KernelCost;

/// Calibration scalar (model efficiency factor).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Calibration {
    /// `modelled_time / measured_time` for the calibration kernel; applied
    /// multiplicatively to all projections.
    pub efficiency: f64,
}

impl Calibration {
    /// Uncalibrated (efficiency 1.0).
    pub fn unit() -> Self {
        Calibration { efficiency: 1.0 }
    }

    /// Calibrates from a measured local run: `modelled` seconds from
    /// [`cpu_latency`] with unit calibration vs `measured` seconds.
    ///
    /// # Panics
    ///
    /// Panics if either time is non-positive.
    pub fn from_measurement(modelled: f64, measured: f64) -> Self {
        assert!(modelled > 0.0 && measured > 0.0, "times must be positive");
        Calibration {
            efficiency: modelled / measured,
        }
    }

    /// Representative efficiency for the T-MAC kernel family when no local
    /// calibration is available (streaming lookups issue close to the
    /// roofline).
    pub fn default_tmac() -> Self {
        Calibration { efficiency: 0.75 }
    }

    /// Representative efficiency for dequantization kernels: the
    /// decode/center/widen mix issues far below the byte-lane roofline
    /// (llama.cpp's measured per-core rates imply ~0.35).
    pub fn default_dequant() -> Self {
        Calibration { efficiency: 0.35 }
    }
}

/// Projects the latency of a kernel with cost `c` on `cpu` using `threads`
/// threads.
///
/// The calibration efficiency applies to the compute term only; memory-side
/// efficiency is already captured by the profile's `sustained_bw_frac`.
pub fn cpu_latency(cpu: &CpuProfile, c: &KernelCost, threads: usize, calib: Calibration) -> f64 {
    let cores = threads.min(cpu.cores).max(1) as f64;
    let lane_rate = cores * cpu.freq_ghz * 1e9 * cpu.simd_ipc * cpu.simd_bytes as f64;
    // Scalar-equivalent f32 work runs on the FMA pipes, simd_bytes/4 lanes.
    let f32_rate = cores * cpu.freq_ghz * 1e9 * cpu.simd_ipc * (cpu.simd_bytes / 4) as f64;
    let compute =
        (c.lane_ops() as f64 / lane_rate + c.f32_ops as f64 / f32_rate) / calib.efficiency;
    // Streaming bandwidth saturates only with several cores: scale linearly
    // up to ~30% of the device's cores (min 2), then flat.
    let saturation_cores = (cpu.cores as f64 * 0.3).max(2.0);
    let bw = cpu.peak_bw_gbs * 1e9 * cpu.sustained_bw_frac * (cores / saturation_cores).min(1.0);
    let memory = c.dram_bytes() as f64 / bw;
    compute.max(memory)
}

/// Projects a dequant-based GEMV on a GPU (llama.cpp CUDA/OpenCL backends):
/// bandwidth-bound weight streaming plus a fixed launch overhead.
pub fn gpu_latency(gpu: &GpuProfile, weight_bytes: u64) -> f64 {
    gpu.launch_us * 1e-6 + weight_bytes as f64 / (gpu.peak_bw_gbs * 1e9 * gpu.sustained_bw_frac)
}

/// A model's decode-step footprint for end-to-end projection.
#[derive(Debug, Clone, Copy)]
pub struct ModelShape {
    /// Display name.
    pub name: &'static str,
    /// Hidden dimension.
    pub dim: usize,
    /// Layers.
    pub n_layers: usize,
    /// FFN inner dimension.
    pub ffn_dim: usize,
    /// KV projection width.
    pub kv_dim: usize,
    /// Vocabulary (LM head rows).
    pub vocab: usize,
}

/// Llama-2-7B decode shape.
pub const LLAMA2_7B: ModelShape = ModelShape {
    name: "Llama-2-7B",
    dim: 4096,
    n_layers: 32,
    ffn_dim: 11008,
    kv_dim: 4096,
    vocab: 32000,
};

/// Llama-2-13B decode shape.
pub const LLAMA2_13B: ModelShape = ModelShape {
    name: "Llama-2-13B",
    dim: 5120,
    n_layers: 40,
    ffn_dim: 13824,
    kv_dim: 5120,
    vocab: 32000,
};

/// BitNet-b1.58-3B decode shape.
pub const BITNET_3B: ModelShape = ModelShape {
    name: "BitNet-3B",
    dim: 3200,
    n_layers: 26,
    ffn_dim: 8640,
    kv_dim: 3200,
    vocab: 32000,
};

impl ModelShape {
    /// The GEMV shapes of one decode step: per-layer projections repeated
    /// `n_layers` times plus the LM head.
    pub fn gemv_shapes(&self) -> Vec<(usize, usize, usize)> {
        // (m, k, count)
        vec![
            (self.dim, self.dim, 2 * self.n_layers),     // wq, wo
            (self.kv_dim, self.dim, 2 * self.n_layers),  // wk, wv
            (self.ffn_dim, self.dim, 2 * self.n_layers), // w1, w3
            (self.dim, self.ffn_dim, self.n_layers),     // w2
            (self.vocab, self.dim, 1),                   // head
        ]
    }

    /// Packed weight bytes per decoded token at `bits` (with f32 scales per
    /// 32 weights).
    pub fn bytes_per_token(&self, bits: u8) -> u64 {
        self.gemv_shapes()
            .iter()
            .map(|&(m, k, n)| {
                let p = (m * k * n) as u64;
                p * bits as u64 / 8 + p / 32 * 4
            })
            .sum()
    }

    /// Total decode-step cost under T-MAC kernels.
    pub fn tmac_cost(&self, bits: u8, opts: &tmac_core::KernelOpts) -> KernelCost {
        let mut total = KernelCost::default();
        for (m, k, n) in self.gemv_shapes() {
            let c = tmac_core::cost::tmac_gemv_cost(m, k, bits as usize, 32, opts);
            total = total.plus(&c.scaled(n as u64));
        }
        total
    }

    /// Total decode-step cost under dequant kernels.
    pub fn dequant_cost(&self, bits: u8) -> KernelCost {
        let mut total = KernelCost::default();
        for (m, k, n) in self.gemv_shapes() {
            let c = tmac_core::cost::dequant_gemv_cost(m, k, bits as usize);
            total = total.plus(&c.scaled(n as u64));
        }
        total
    }
}

/// End-to-end CPU decode projection: GEMV time from the roofline plus a
/// fixed non-GEMV overhead share (attention, norms, sampling — the paper's
/// §5.7 residual).
pub fn cpu_tokens_per_sec(
    cpu: &CpuProfile,
    cost: &KernelCost,
    threads: usize,
    calib: Calibration,
    non_gemv_frac: f64,
) -> f64 {
    let t = cpu_latency(cpu, cost, threads, calib);
    1.0 / (t * (1.0 + non_gemv_frac))
}

/// End-to-end GPU decode projection.
pub fn gpu_tokens_per_sec(gpu: &GpuProfile, shape: &ModelShape, bits: u8) -> f64 {
    // One kernel launch per projection matmul.
    let launches: usize = shape.gemv_shapes().iter().map(|&(_, _, n)| n).sum();
    let bytes = shape.bytes_per_token(bits);
    let t = launches as f64 * gpu.launch_us * 1e-6
        + bytes as f64 / (gpu.peak_bw_gbs * 1e9 * gpu.sustained_bw_frac);
    1.0 / (t * 1.10) // 10% non-GEMV overhead
}

/// NPU decode projection (official numbers; 2-bit deduced from 4-bit as the
/// paper does, marked `*` in its Table 7).
pub fn npu_tokens_per_sec(npu: &NpuProfile, _bits: u8) -> f64 {
    npu.tokens_per_sec_7b_4bit
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles::*;
    use tmac_core::KernelOpts;

    #[test]
    fn latency_decreases_with_threads_until_memory_bound() {
        let c = LLAMA2_7B.tmac_cost(4, &KernelOpts::tmac());
        let t1 = cpu_latency(&RASPBERRY_PI5, &c, 1, Calibration::unit());
        let t4 = cpu_latency(&RASPBERRY_PI5, &c, 4, Calibration::unit());
        assert!(t4 < t1);
        let t8 = cpu_latency(&RASPBERRY_PI5, &c, 8, Calibration::unit());
        assert_eq!(t8, t4, "threads capped at core count");
    }

    #[test]
    fn tmac_scales_with_bits_dequant_does_not() {
        // Realistic per-family efficiencies; all cores active (the paper's
        // multi-thread setting, where llama.cpp is decode-compute-bound).
        let t2 = cpu_latency(
            &SURFACE_BOOK3,
            &LLAMA2_7B.tmac_cost(2, &KernelOpts::tmac()),
            4,
            Calibration::default_tmac(),
        );
        let t4 = cpu_latency(
            &SURFACE_BOOK3,
            &LLAMA2_7B.tmac_cost(4, &KernelOpts::tmac()),
            4,
            Calibration::default_tmac(),
        );
        assert!(t4 / t2 > 1.5, "T-MAC should scale ~linearly: {t2} vs {t4}");
        let d2 = cpu_latency(
            &SURFACE_BOOK3,
            &LLAMA2_7B.dequant_cost(2),
            4,
            Calibration::default_dequant(),
        );
        let d4 = cpu_latency(
            &SURFACE_BOOK3,
            &LLAMA2_7B.dequant_cost(4),
            4,
            Calibration::default_dequant(),
        );
        // Dequant gains far less from dropping bits than T-MAC (its compute
        // does not shrink; only the memory term does when memory-bound).
        assert!(
            d4 / d2 < t4 / t2 && d4 / d2 < 1.4,
            "dequant should scale much less than T-MAC: {d2} vs {d4}"
        );
    }

    #[test]
    fn orin_table5_ordering_holds() {
        // Paper Table 5 (Llama-2-7B-2bit on AGX Orin): GPU 20.0 > T-MAC
        // 15.6 > llama.cpp CPU 7.1 tokens/s.
        let tmac = cpu_tokens_per_sec(
            &JETSON_AGX_ORIN,
            &LLAMA2_7B.tmac_cost(2, &KernelOpts::tmac()),
            12,
            Calibration::default_tmac(),
            0.25,
        );
        let cpu_base = cpu_tokens_per_sec(
            &JETSON_AGX_ORIN,
            &LLAMA2_7B.dequant_cost(2),
            12,
            Calibration::default_dequant(),
            0.25,
        );
        let gpu = gpu_tokens_per_sec(&ORIN_AGX_GPU, &LLAMA2_7B, 2);
        assert!(tmac > cpu_base, "T-MAC {tmac} vs llama.cpp {cpu_base}");
        assert!(gpu > tmac, "GPU {gpu} vs T-MAC {tmac}");
        // Magnitudes within ~2x of the paper's measurements.
        assert!((7.0..45.0).contains(&tmac), "T-MAC tokens/s {tmac}");
        assert!(
            (3.0..16.0).contains(&cpu_base),
            "llama.cpp tokens/s {cpu_base}"
        );
    }

    #[test]
    fn adreno_is_pathologically_slow() {
        // Paper Table 7: llama.cpp on the Adreno GPU reaches only ~1.7
        // tokens/s for 7B-2bit.
        let t = gpu_tokens_per_sec(&ADRENO_750_GPU, &LLAMA2_7B, 2);
        assert!(t < 4.0, "Adreno projection too fast: {t}");
    }

    #[test]
    fn bytes_per_token_matches_param_math() {
        // 7B at 4-bit: ~6.6B layer+head params = ~3.3 GB at 4 bits + scales.
        let b = LLAMA2_7B.bytes_per_token(4);
        assert!((3.0e9..4.5e9).contains(&(b as f64)), "{b}");
    }

    #[test]
    fn calibration_scales_compute_term() {
        // Calibration divides compute only; pick a compute-bound case
        // (single thread on the bandwidth-rich M2-Ultra).
        let c = LLAMA2_7B.tmac_cost(4, &KernelOpts::tmac());
        let t1 = cpu_latency(&M2_ULTRA, &c, 1, Calibration::unit());
        let t2 = cpu_latency(&M2_ULTRA, &c, 1, Calibration { efficiency: 0.5 });
        assert!(t2 > t1, "lower efficiency must not speed things up");
        assert!((t2 - 2.0 * t1).abs() < 1e-9 * t1.max(1.0) || t2 >= t1);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn calibration_rejects_zero() {
        let _ = Calibration::from_measurement(0.0, 1.0);
    }
}
