//! # tmac — T-MAC reproduction umbrella crate
//!
//! Re-exports the whole workspace: the LUT-based mixed-precision GEMM kernel
//! library (*T-MAC: CPU Renaissance via Table Lookup for Low-Bit LLM
//! Deployment on Edge*, EuroSys 2025) and every substrate built for it.
//!
//! | crate | role |
//! |---|---|
//! | [`core`] (`tmac-core`) | the paper's contribution: bit-serial LUT mpGEMM/mpGEMV kernels |
//! | [`simd`] (`tmac-simd`) | runtime-dispatched lookup/aggregation primitives (Table 1) |
//! | [`quant`] (`tmac-quant`) | weight quantizers and llama.cpp-style block formats |
//! | [`baseline`] (`tmac-baseline`) | dequantization-based comparator kernels |
//! | [`threadpool`] (`tmac-threadpool`) | static-threadblock parallel substrate |
//! | [`llm`] (`tmac-llm`) | llama-architecture inference engine with pluggable backends |
//! | [`devices`] (`tmac-devices`) | edge-device rooflines and the energy model |
//!
//! # Examples
//!
//! ```
//! use tmac::core::{KernelOpts, TmacLinear};
//! use tmac::threadpool::ThreadPool;
//!
//! let weights: Vec<f32> = (0..32 * 64).map(|i| (i as f32 * 0.1).sin()).collect();
//! let layer = TmacLinear::from_f32(&weights, 32, 64, 2, 32, KernelOpts::tmac()).unwrap();
//! let act = vec![1.0f32; 64];
//! let mut out = vec![0f32; 32];
//! layer.gemv(&act, &mut out, &ThreadPool::new(1)).unwrap();
//! ```

pub use tmac_baseline as baseline;
pub use tmac_core as core;
pub use tmac_devices as devices;
pub use tmac_llm as llm;
pub use tmac_quant as quant;
pub use tmac_simd as simd;
pub use tmac_threadpool as threadpool;
