//! # tmac — T-MAC reproduction umbrella crate
//!
//! Re-exports the whole workspace: the LUT-based mixed-precision GEMM kernel
//! library (*T-MAC: CPU Renaissance via Table Lookup for Low-Bit LLM
//! Deployment on Edge*, EuroSys 2025) and every substrate built for it.
//!
//! | crate | role |
//! |---|---|
//! | [`core`] (`tmac-core`) | the paper's contribution: bit-serial LUT mpGEMM/mpGEMV kernels, plus the shared [`prelude::ExecCtx`] |
//! | [`simd`] (`tmac-simd`) | runtime-dispatched lookup/aggregation primitives (Table 1) |
//! | [`quant`] (`tmac-quant`) | weight quantizers and llama.cpp-style block formats |
//! | [`baseline`] (`tmac-baseline`) | dequantization-based comparator kernels |
//! | [`threadpool`] (`tmac-threadpool`) | static-threadblock parallel substrate |
//! | [`llm`] (`tmac-llm`) | llama-architecture inference engine with pluggable [`prelude::LinearBackend`]s |
//! | [`io`] (`tmac-io`) | model containers: GGUF import/export, prepacked `.tmac`, mmap zero-copy loading |
//! | [`serve`] (`tmac-serve`) | HTTP/SSE serving front-end over the continuous-batching scheduler |
//! | [`devices`] (`tmac-devices`) | edge-device rooflines and the energy model |
//!
//! # Examples
//!
//! All execution goes through an [`prelude::ExecCtx`] — the unified carrier
//! of the thread pool and the activation-table cache:
//!
//! ```
//! use tmac::prelude::*;
//!
//! let weights: Vec<f32> = (0..32 * 64).map(|i| (i as f32 * 0.1).sin()).collect();
//! let layer = TmacLinear::from_f32(&weights, 32, 64, 2, 32, KernelOpts::tmac()).unwrap();
//! let act = vec![1.0f32; 64];
//! let ctx = ExecCtx::new(2);
//! let mut out = vec![0f32; 32];
//! layer.gemv(&act, &mut out, &ctx).unwrap();
//! ```
//!
//! When several layers consume the same activation — QKV projections, the
//! FFN gate/up pair — one table build serves all of them:
//!
//! ```
//! use tmac::prelude::*;
//!
//! let w: Vec<f32> = (0..32 * 64).map(|i| (i as f32 * 0.2).cos()).collect();
//! let wq = TmacLinear::from_f32(&w, 32, 64, 4, 32, KernelOpts::tmac()).unwrap();
//! let wk = TmacLinear::from_f32(&w, 32, 64, 2, 32, KernelOpts::tmac()).unwrap();
//! let ctx = ExecCtx::new(1);
//! let act = vec![0.5f32; 64];
//! let mut out = vec![0f32; 32];
//!
//! ctx.next_activation(); // a new activation vector arrives
//! wq.gemv_cached(&act, &mut out, &ctx).unwrap(); // builds tables
//! wk.gemv_cached(&act, &mut out, &ctx).unwrap(); // reuses them
//! assert_eq!(ctx.table_stats().hits, 1);
//! ```

pub use tmac_baseline as baseline;
pub use tmac_core as core;
pub use tmac_devices as devices;
pub use tmac_io as io;
pub use tmac_llm as llm;
pub use tmac_quant as quant;
pub use tmac_serve as serve;
pub use tmac_simd as simd;
pub use tmac_threadpool as threadpool;
pub use tmac_trace as trace;

/// The one-stop import for the unified execution API.
///
/// Brings in the execution context, the kernel entry points, the
/// quantizers' canonical matrix type, and the LLM stack with its pluggable
/// backend machinery.
pub mod prelude {
    pub use tmac_baseline::DequantLinear;
    pub use tmac_core::{
        ActTables, ExecCtx, KernelOpts, TableCacheStats, TableProfile, TmacError, TmacLinear,
        WeightPlan,
    };
    // `LoadMode` reaches the prelude through the llm re-export (it is the
    // same type as `tmac_io::LoadMode`).
    pub use tmac_io::{GgufFile, GgufValue, GgufWriter, IoError, TmacContainer};
    pub use tmac_llm::{
        AttnScratch, BackendBuilder, BackendError, BackendKind, BackendRegistry, BatchScratch,
        DecodeStats, DequantBackend, Engine, F32Backend, FinishReason, FinishedSeq, KvCache,
        KvError, KvPrecision, KvStats, Linear, LinearBackend, LoadMode, Model, ModelConfig,
        ModelIoError, Scheduler, SchedulerConfig, Scratch, SeqId, SeqTiming, StepToken,
        TmacBackend, WeightQuant,
    };
    pub use tmac_quant::QuantizedMatrix;
    pub use tmac_threadpool::ThreadPool;
}
