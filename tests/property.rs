//! Property-based tests for the core invariants. `proptest` is unavailable
//! offline, so cases are generated with the workspace's deterministic PRNG
//! (`tmac-rng`) — every invariant is checked across a seeded sweep of random
//! inputs rather than a single example:
//!
//! * Eq. 1 — bit-serial reconstruction is exact for arbitrary codes;
//! * the offline layouts (flat / permuted / interleaved) are bijective
//!   re-arrangements of the same indices;
//! * mirror consolidation's sign identity;
//! * table quantization error is bounded by half a step;
//! * the whole GEMV is linear in the activations;
//! * `gemv` == `gemv_with_tables` == `gemv_cached` **bit-exactly**, for all
//!   bit-widths and odd shapes (the ExecCtx table-reuse contract);
//! * thread-pool chunking partitions exactly.

use tmac::core::kernel::scalar::gemv_reference;
use tmac::core::plan::index_from_codes;
use tmac::core::table::{raw_table, ActTables, TABLE_LEN};
use tmac::core::{ExecCtx, KernelOpts, TmacLinear, WeightPlan};
use tmac::quant::QuantizedMatrix;
use tmac::threadpool::chunk_range;
use tmac_rng::Rng;

/// Cases per property (mirrors the old `ProptestConfig::with_cases(24)`).
const CASES: u64 = 24;

fn arb_codes(rng: &mut Rng, m: usize, k: usize, bits: u8) -> Vec<u8> {
    (0..m * k).map(|_| rng.u32_below(1 << bits) as u8).collect()
}

fn arb_scales(rng: &mut Rng, n: usize) -> Vec<f32> {
    (0..n).map(|_| rng.f32_range(0.01, 2.0)).collect()
}

fn arb_acts(rng: &mut Rng, n: usize, lo: f32, hi: f32) -> Vec<f32> {
    (0..n).map(|_| rng.f32_range(lo, hi)).collect()
}

fn matrix(codes: Vec<u8>, scales: Vec<f32>, m: usize, k: usize, bits: u8) -> QuantizedMatrix {
    QuantizedMatrix {
        rows: m,
        cols: k,
        bits,
        group_size: 32,
        codes,
        scales,
        zero: QuantizedMatrix::default_zero(bits),
    }
}

/// Eq. 1: Σ_i 2^i · b_i reconstructs every code, bit-exactly, through the
/// plan's per-bit indices.
#[test]
fn bit_serial_reconstruction_exact() {
    for case in 0..CASES {
        let mut rng = Rng::seed_from_u64(0x100 + case);
        let codes = arb_codes(&mut rng, 8, 64, 3);
        let scales = arb_scales(&mut rng, 8 * 2);
        let qm = matrix(codes, scales, 8, 64, 3);
        let plan = WeightPlan::new(&qm, KernelOpts::tmac()).unwrap();
        for row in 0..8 {
            for kg in 0..16 {
                for j in 0..4 {
                    let code = qm.codes[row * 64 + kg * 4 + j];
                    let mut rebuilt = 0u8;
                    for bit in 0..3 {
                        let idx = plan.index(bit, row, kg);
                        rebuilt |= ((idx >> j) & 1) << bit;
                    }
                    assert_eq!(rebuilt, code, "case {case} row {row} kg {kg} j {j}");
                }
            }
        }
    }
}

/// Every layout stores the same logical indices (bijective permutation).
#[test]
fn layouts_are_permutations() {
    for case in 0..CASES {
        let mut rng = Rng::seed_from_u64(0x200 + case);
        let codes = arb_codes(&mut rng, 40, 64, 2);
        let scales = arb_scales(&mut rng, 40 * 2);
        let interleave = rng.u32_below(2) == 1;
        let qm = matrix(codes, scales, 40, 64, 2);
        let mut opts = KernelOpts::plus_permute();
        opts.interleave = interleave;
        opts.tile_k = 32;
        let perm = WeightPlan::new(&qm, opts).unwrap();
        let flat = WeightPlan::new(&qm, KernelOpts::plus_table_quant()).unwrap();
        for bit in 0..2 {
            for row in 0..40 {
                for kg in 0..16 {
                    assert_eq!(
                        perm.index(bit, row, kg),
                        flat.index(bit, row, kg),
                        "case {case} interleave {interleave}"
                    );
                    assert_eq!(
                        flat.index(bit, row, kg),
                        index_from_codes(&qm, bit, row, kg),
                        "case {case}"
                    );
                }
            }
        }
    }
}

/// Mirror: t[15 - i] == -t[i] for the raw table.
#[test]
fn mirror_sign_identity() {
    for case in 0..CASES {
        let mut rng = Rng::seed_from_u64(0x300 + case);
        let mut a = [0f32; 4];
        for x in &mut a {
            *x = rng.f32_range(-3.0, 3.0);
        }
        let t = raw_table(&a);
        for i in 0..TABLE_LEN / 2 {
            assert!(
                (t[i] + t[TABLE_LEN - 1 - i]).abs() < 1e-5,
                "case {case} i {i}"
            );
        }
    }
}

/// Quantized tables deviate from raw tables by at most half a step.
#[test]
fn table_quantization_bounded() {
    for case in 0..CASES {
        let mut rng = Rng::seed_from_u64(0x400 + case);
        let acts = arb_acts(&mut rng, 64, -2.0, 2.0);
        let full = ActTables::build(&acts, 32, &KernelOpts::plus_table_quant()).unwrap();
        for kg in 0..16 {
            let mut a = [0f32; 4];
            a.copy_from_slice(&acts[kg * 4..kg * 4 + 4]);
            let raw = raw_table(&a);
            let sb = kg / 8;
            for (i, &r) in raw.iter().enumerate() {
                let q = full.lookup_f32(kg, i as u8);
                assert!(
                    (q - r).abs() <= full.q_scales[sb] * 0.5 + 1e-6,
                    "case {case} kg={kg} i={i} raw={r} quant={q}"
                );
            }
        }
    }
}

/// GEMV is linear in activations: f(αx) == α·f(x) for the *unquantized-
/// table* path (table quantization breaks exact homogeneity).
#[test]
fn gemv_linear_in_activations() {
    for case in 0..CASES {
        let mut rng = Rng::seed_from_u64(0x500 + case);
        let codes = arb_codes(&mut rng, 32, 32, 2);
        let scales = arb_scales(&mut rng, 32);
        let alpha = rng.f32_range(0.25, 4.0);
        let qm = matrix(codes, scales, 32, 32, 2);
        let a: Vec<f32> = (0..32).map(|i| ((i as f32) * 0.3).sin()).collect();
        let scaled: Vec<f32> = a.iter().map(|x| x * alpha).collect();
        let r1 = gemv_reference(&qm, &a);
        let r2 = gemv_reference(&qm, &scaled);
        for (x, y) in r1.iter().zip(&r2) {
            assert!(
                (x * alpha - y).abs() < 1e-2 * (1.0 + y.abs()),
                "case {case} alpha {alpha}"
            );
        }
    }
}

/// The kernel agrees with the dequantized reference for random codes (not
/// just RTN-produced ones).
#[test]
fn kernel_correct_on_arbitrary_codes() {
    let ctx = ExecCtx::new(1);
    for case in 0..CASES {
        let mut rng = Rng::seed_from_u64(0x600 + case);
        let codes = arb_codes(&mut rng, 32, 64, 4);
        let scales = arb_scales(&mut rng, 32 * 2);
        let qm = matrix(codes, scales, 32, 64, 4);
        let a: Vec<f32> = (0..64).map(|i| ((i as f32) * 0.21).cos()).collect();
        let reference = gemv_reference(&qm, &a);
        let tl = TmacLinear::new(&qm, KernelOpts::tmac()).unwrap();
        let mut out = vec![0f32; 32];
        tl.gemv(&a, &mut out, &ctx).unwrap();
        let e = tmac::simd::f32ops::nmse(&out, &reference);
        assert!(e < 5e-3, "case {case} nmse {e}");
    }
}

/// The ExecCtx table-reuse contract: `gemv` (fresh tables per call),
/// `gemv_with_tables` (caller-held tables) and `gemv_cached` (context-cached
/// tables) are **bit-exact** equal — for every bit-width and for odd,
/// non-tile-aligned shapes.
#[test]
fn gemv_paths_bit_exact_across_bits_and_odd_shapes() {
    for &(m, k) in &[(33usize, 96usize), (50, 160), (97, 224), (64, 128)] {
        for bits in 1..=4u8 {
            let mut rng = Rng::seed_from_u64((m * k) as u64 ^ (bits as u64) << 48);
            let w: Vec<f32> = (0..m * k).map(|_| rng.f32_range(-0.8, 0.8)).collect();
            let qm = tmac::quant::rtn::quantize(&w, m, k, bits, 32).unwrap();
            let a = arb_acts(&mut rng, k, -1.0, 1.0);
            let tl = TmacLinear::new(&qm, KernelOpts::tmac()).unwrap();
            let ctx = ExecCtx::new(2);

            let mut fresh = vec![0f32; m];
            tl.gemv(&a, &mut fresh, &ctx).unwrap();

            let tables = tl.tables(&a).unwrap();
            let mut held = vec![0f32; m];
            tl.gemv_with_tables(&tables, &mut held, &ctx).unwrap();

            ctx.next_activation();
            let mut cached = vec![0f32; m];
            tl.gemv_cached(&a, &mut cached, &ctx).unwrap();
            // A second cached run must hit the cache and stay bit-exact.
            let mut cached2 = vec![0f32; m];
            tl.gemv_cached(&a, &mut cached2, &ctx).unwrap();

            assert_eq!(fresh, held, "m={m} k={k} bits={bits}: with_tables");
            assert_eq!(fresh, cached, "m={m} k={k} bits={bits}: cached");
            assert_eq!(fresh, cached2, "m={m} k={k} bits={bits}: cached hit");
            assert!(ctx.table_stats().hits >= 1, "second cached call must hit");
        }
    }
}

/// chunk_range partitions [0, total) exactly, for any parameters.
#[test]
fn chunks_partition_exactly() {
    for case in 0..CASES * 4 {
        let mut rng = Rng::seed_from_u64(0x700 + case);
        let total = rng.usize_below(5000);
        let granule = 1 + rng.usize_below(63);
        let n = 1 + rng.usize_below(8);
        let mut covered = 0usize;
        let mut prev_end = 0usize;
        for tid in 0..n {
            let r = chunk_range(total, granule, tid, n);
            assert!(r.start <= r.end);
            if !r.is_empty() {
                assert_eq!(r.start, prev_end, "case {case}");
                assert_eq!(r.start % granule, 0, "case {case}");
                prev_end = r.end;
                covered += r.len();
            }
        }
        assert_eq!(
            covered, total,
            "case {case} total={total} granule={granule} n={n}"
        );
    }
}

/// Nibble pack/unpack round-trips (the Figure 4 interleave primitive).
#[test]
fn nibble_roundtrip() {
    for case in 0..CASES {
        let mut rng = Rng::seed_from_u64(0x800 + case);
        let lo: Vec<u8> = (0..16).map(|_| rng.u32_below(16) as u8).collect();
        let hi: Vec<u8> = (0..16).map(|_| rng.u32_below(16) as u8).collect();
        let mut packed = vec![0u8; 16];
        tmac::simd::scalar::pack_nibbles(&lo, &hi, &mut packed);
        let (mut l2, mut h2) = (vec![0u8; 16], vec![0u8; 16]);
        tmac::simd::scalar::unpack_nibbles(&packed, &mut l2, &mut h2);
        assert_eq!(lo, l2, "case {case}");
        assert_eq!(hi, h2, "case {case}");
    }
}
