//! Property-based tests (proptest) for the core invariants:
//!
//! * Eq. 1 — bit-serial reconstruction is exact for arbitrary codes;
//! * the offline layouts (flat / permuted / interleaved) are bijective
//!   re-arrangements of the same indices;
//! * mirror consolidation's sign identity;
//! * table quantization error is bounded by half a step;
//! * the whole GEMV is linear in the activations;
//! * thread-pool chunking partitions exactly.

use proptest::prelude::*;
use tmac::core::kernel::scalar::gemv_reference;
use tmac::core::plan::index_from_codes;
use tmac::core::table::{raw_table, ActTables, TABLE_LEN};
use tmac::core::{KernelOpts, TmacLinear, WeightPlan};
use tmac::quant::QuantizedMatrix;
use tmac::threadpool::{chunk_range, ThreadPool};

fn arb_codes(m: usize, k: usize, bits: u8) -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(0u8..(1 << bits), m * k)
}

fn arb_scales(n: usize) -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(0.01f32..2.0, n)
}

fn matrix(codes: Vec<u8>, scales: Vec<f32>, m: usize, k: usize, bits: u8) -> QuantizedMatrix {
    QuantizedMatrix {
        rows: m,
        cols: k,
        bits,
        group_size: 32,
        codes,
        scales,
        zero: QuantizedMatrix::default_zero(bits),
        }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Eq. 1: Σ_i 2^i · b_i reconstructs every code, bit-exactly, through
    /// the plan's per-bit indices.
    #[test]
    fn bit_serial_reconstruction_exact(
        codes in arb_codes(8, 64, 3),
        scales in arb_scales(8 * 2),
    ) {
        let qm = matrix(codes, scales, 8, 64, 3);
        let plan = WeightPlan::new(&qm, KernelOpts::tmac()).unwrap();
        for row in 0..8 {
            for kg in 0..16 {
                for j in 0..4 {
                    let code = qm.codes[row * 64 + kg * 4 + j];
                    let mut rebuilt = 0u8;
                    for bit in 0..3 {
                        let idx = plan.index(bit, row, kg);
                        rebuilt |= ((idx >> j) & 1) << bit;
                    }
                    prop_assert_eq!(rebuilt, code);
                }
            }
        }
    }

    /// Every layout stores the same logical indices (bijective permutation).
    #[test]
    fn layouts_are_permutations(
        codes in arb_codes(40, 64, 2),
        scales in arb_scales(40 * 2),
        interleave in any::<bool>(),
    ) {
        let qm = matrix(codes, scales, 40, 64, 2);
        let mut opts = KernelOpts::plus_permute();
        opts.interleave = interleave;
        opts.tile_k = 32;
        let perm = WeightPlan::new(&qm, opts).unwrap();
        let flat = WeightPlan::new(&qm, KernelOpts::plus_table_quant()).unwrap();
        for bit in 0..2 {
            for row in 0..40 {
                for kg in 0..16 {
                    prop_assert_eq!(
                        perm.index(bit, row, kg),
                        flat.index(bit, row, kg)
                    );
                    prop_assert_eq!(
                        flat.index(bit, row, kg),
                        index_from_codes(&qm, bit, row, kg)
                    );
                }
            }
        }
    }

    /// Mirror: t[15 - i] == -t[i] for the raw table, and the consolidated
    /// lookup reproduces the full table.
    #[test]
    fn mirror_sign_identity(a in prop::array::uniform4(-3.0f32..3.0)) {
        let t = raw_table(&a);
        for i in 0..TABLE_LEN / 2 {
            prop_assert!((t[i] + t[TABLE_LEN - 1 - i]).abs() < 1e-5);
        }
    }

    /// Quantized tables deviate from raw tables by at most half a step.
    #[test]
    fn table_quantization_bounded(acts in prop::collection::vec(-2.0f32..2.0, 64)) {
        let full = ActTables::build(&acts, 32, &KernelOpts::plus_table_quant()).unwrap();
        for kg in 0..16 {
            let mut a = [0f32; 4];
            a.copy_from_slice(&acts[kg * 4..kg * 4 + 4]);
            let raw = raw_table(&a);
            let sb = kg / 8;
            for (i, &r) in raw.iter().enumerate() {
                let q = full.lookup_f32(kg, i as u8);
                prop_assert!(
                    (q - r).abs() <= full.q_scales[sb] * 0.5 + 1e-6,
                    "kg={} i={} raw={} quant={}", kg, i, r, q
                );
            }
        }
    }

    /// GEMV is linear in activations: f(αx) == α·f(x) for the *unquantized-
    /// table* path (table quantization breaks exact homogeneity).
    #[test]
    fn gemv_linear_in_activations(
        codes in arb_codes(32, 32, 2),
        scales in arb_scales(32),
        alpha in 0.25f32..4.0,
    ) {
        let qm = matrix(codes, scales, 32, 32, 2);
        let a: Vec<f32> = (0..32).map(|i| ((i as f32) * 0.3).sin()).collect();
        let scaled: Vec<f32> = a.iter().map(|x| x * alpha).collect();
        let r1 = gemv_reference(&qm, &a);
        let r2 = gemv_reference(&qm, &scaled);
        for (x, y) in r1.iter().zip(&r2) {
            prop_assert!((x * alpha - y).abs() < 1e-2 * (1.0 + y.abs()));
        }
    }

    /// The kernel agrees with the dequantized reference for random codes
    /// (not just RTN-produced ones).
    #[test]
    fn kernel_correct_on_arbitrary_codes(
        codes in arb_codes(32, 64, 4),
        scales in arb_scales(32 * 2),
    ) {
        let qm = matrix(codes, scales, 32, 64, 4);
        let a: Vec<f32> = (0..64).map(|i| ((i as f32) * 0.21).cos()).collect();
        let reference = gemv_reference(&qm, &a);
        let tl = TmacLinear::new(&qm, KernelOpts::tmac()).unwrap();
        let pool = ThreadPool::new(1);
        let mut out = vec![0f32; 32];
        tl.gemv(&a, &mut out, &pool).unwrap();
        let e = tmac::simd::f32ops::nmse(&out, &reference);
        prop_assert!(e < 5e-3, "nmse {}", e);
    }

    /// chunk_range partitions [0, total) exactly, for any parameters.
    #[test]
    fn chunks_partition_exactly(
        total in 0usize..5000,
        granule in 1usize..64,
        n in 1usize..9,
    ) {
        let mut covered = 0usize;
        let mut prev_end = 0usize;
        for tid in 0..n {
            let r = chunk_range(total, granule, tid, n);
            prop_assert!(r.start <= r.end);
            if !r.is_empty() {
                prop_assert_eq!(r.start, prev_end);
                prop_assert_eq!(r.start % granule, 0);
                prev_end = r.end;
                covered += r.len();
            }
        }
        prop_assert_eq!(covered, total);
    }

    /// Nibble pack/unpack round-trips (the Figure 4 interleave primitive).
    #[test]
    fn nibble_roundtrip(lo in prop::collection::vec(0u8..16, 16), hi in prop::collection::vec(0u8..16, 16)) {
        let mut packed = vec![0u8; 16];
        tmac::simd::scalar::pack_nibbles(&lo, &hi, &mut packed);
        let (mut l2, mut h2) = (vec![0u8; 16], vec![0u8; 16]);
        tmac::simd::scalar::unpack_nibbles(&packed, &mut l2, &mut h2);
        prop_assert_eq!(lo, l2);
        prop_assert_eq!(hi, h2);
    }
}
