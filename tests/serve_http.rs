//! End-to-end tests for the `tmac-serve` HTTP front-end: real TCP clients
//! against a real server over the tiny synthetic model, checked bit-exact
//! against driving the [`Scheduler`] directly.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;
use tmac::core::ExecCtx;
use tmac::llm::{
    BackendKind, Model, ModelConfig, SamplingParams, Scheduler, SchedulerConfig, SubmitRequest,
    WeightQuant,
};
use tmac::serve::{ConnMode, Json, ServerConfig, ServerHandle};

const SEED: u64 = 42;

fn tiny_model() -> Model {
    Model::synthetic(
        &ModelConfig::tiny(),
        WeightQuant::Rtn(2),
        BackendKind::Tmac(tmac::core::KernelOpts::tmac()),
        SEED,
    )
    .unwrap()
}

/// A tiny-shaped model with a long context, so cancellation/deadline tests
/// get hundreds of decode steps to interrupt.
fn long_model() -> Model {
    Model::synthetic(
        &ModelConfig::tiny().scaled(2, 96, 512),
        WeightQuant::Rtn(2),
        BackendKind::Tmac(tmac::core::KernelOpts::tmac()),
        SEED,
    )
    .unwrap()
}

fn start_server_with(
    model: Model,
    max_batch: usize,
    max_pending: usize,
    mode: ConnMode,
) -> ServerHandle {
    let sched = Scheduler::new(
        model,
        SchedulerConfig {
            max_batch,
            max_pending,
            ..SchedulerConfig::default()
        },
    );
    tmac::serve::start(
        sched,
        ExecCtx::new(1),
        ServerConfig {
            mode,
            idle_conn_timeout: Duration::from_millis(500),
            ..ServerConfig::default()
        },
    )
    .unwrap()
}

fn start_server(max_batch: usize, max_pending: usize, mode: ConnMode) -> ServerHandle {
    start_server_with(tiny_model(), max_batch, max_pending, mode)
}

/// Scheduler-direct reference output for one prompt.
fn direct_tokens_on(model: Model, prompt: &[u32], max_new: usize) -> Vec<u32> {
    let ctx = ExecCtx::new(1);
    let mut sched = Scheduler::new(model, SchedulerConfig::default());
    let id = sched
        .submit(SubmitRequest::greedy(prompt, max_new))
        .unwrap();
    let done = sched.run_to_completion(&ctx).unwrap();
    done.into_iter().find(|f| f.id == id).unwrap().tokens
}

fn direct_tokens(prompt: &[u32], max_new: usize) -> Vec<u32> {
    direct_tokens_on(tiny_model(), prompt, max_new)
}

/// Minimal blocking HTTP client: one request, `Connection: close`, reads
/// the whole response.
fn http_request(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String, String) {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    let req = format!(
        "{method} {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(req.as_bytes()).unwrap();
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).unwrap();
    parse_response(&raw)
}

/// (status, head, body) from raw response bytes.
fn parse_response(raw: &[u8]) -> (u16, String, String) {
    let text = String::from_utf8_lossy(raw).into_owned();
    let (head, body) = text.split_once("\r\n\r\n").expect("complete response");
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .expect("status line")
        .parse()
        .unwrap();
    (status, head.to_string(), body.to_string())
}

fn post_completion(addr: SocketAddr, body: &str) -> (u16, String) {
    let (status, _, resp) = http_request(addr, "POST", "/v1/completions", body);
    (status, resp)
}

fn completion_tokens(body: &str) -> (Vec<u32>, String) {
    let doc = Json::parse(body).expect("valid completion JSON");
    let choice = &doc.get("choices").unwrap().as_arr().unwrap()[0];
    let tokens = choice
        .get("token_ids")
        .unwrap()
        .as_arr()
        .unwrap()
        .iter()
        .map(|t| t.as_u64().unwrap() as u32)
        .collect();
    let reason = choice
        .get("finish_reason")
        .unwrap()
        .as_str()
        .unwrap()
        .to_string();
    (tokens, reason)
}

fn prompt_json(prompt: &[u32], max_tokens: usize, stream: bool) -> String {
    let ids: Vec<String> = prompt.iter().map(|t| t.to_string()).collect();
    format!(
        "{{\"prompt\":[{}],\"max_tokens\":{max_tokens},\"stream\":{stream}}}",
        ids.join(",")
    )
}

/// Streams a completion over SSE and returns (chunk token ids, tail
/// finish_reason).
fn stream_completion(addr: SocketAddr, prompt: &[u32], max_tokens: usize) -> (Vec<u32>, String) {
    let body = prompt_json(prompt, max_tokens, true);
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    let req = format!(
        "POST /v1/completions HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(req.as_bytes()).unwrap();
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).unwrap(); // close-delimited
    let text = String::from_utf8_lossy(&raw);
    assert!(
        text.starts_with("HTTP/1.1 200"),
        "SSE stream must open with 200: {text}"
    );
    assert!(text.contains("text/event-stream"), "{text}");
    assert!(text.trim_end().ends_with("data: [DONE]"), "{text}");
    let mut tokens = Vec::new();
    let mut reason = String::new();
    for line in text.lines() {
        let Some(payload) = line.strip_prefix("data: ") else {
            continue;
        };
        if payload == "[DONE]" {
            break;
        }
        let doc = Json::parse(payload).expect("valid SSE chunk JSON");
        let choice = &doc.get("choices").unwrap().as_arr().unwrap()[0];
        if let Some(t) = choice.get("token_id") {
            tokens.push(t.as_u64().unwrap() as u32);
        }
        if let Some(r) = choice.get("finish_reason") {
            reason = r.as_str().unwrap().to_string();
        }
    }
    (tokens, reason)
}

fn both_modes() -> Vec<ConnMode> {
    if cfg!(target_os = "linux") {
        vec![ConnMode::Epoll, ConnMode::Threads]
    } else {
        vec![ConnMode::Threads]
    }
}

#[test]
fn concurrent_mixed_clients_are_bit_exact_vs_direct() {
    // Six prompts, half streamed over SSE and half plain JSON, all in
    // flight at once against a 2-slot scheduler — every client must get
    // exactly the tokens a direct Scheduler run produces.
    let cases: Vec<(Vec<u32>, usize)> = vec![
        (vec![1, 2, 3], 6),
        (vec![9], 5),
        (vec![4, 5], 7),
        (vec![11, 3, 8, 2], 4),
        (vec![60, 61], 6),
        (vec![17, 20, 23], 5),
    ];
    let expected: Vec<Vec<u32>> = cases.iter().map(|(p, n)| direct_tokens(p, *n)).collect();

    for mode in both_modes() {
        let server = start_server(2, 16, mode);
        let addr = server.addr();
        let handles: Vec<_> = cases
            .iter()
            .cloned()
            .enumerate()
            .map(|(i, (prompt, max_new))| {
                std::thread::spawn(move || {
                    if i % 2 == 0 {
                        stream_completion(addr, &prompt, max_new)
                    } else {
                        let (status, body) =
                            post_completion(addr, &prompt_json(&prompt, max_new, false));
                        assert_eq!(status, 200, "body: {body}");
                        completion_tokens(&body)
                    }
                })
            })
            .collect();
        for (i, h) in handles.into_iter().enumerate() {
            let (tokens, reason) = h.join().unwrap();
            assert_eq!(reason, "length", "mode {mode:?} case {i}");
            assert_eq!(
                tokens, expected[i],
                "mode {mode:?} case {i} diverged from direct run"
            );
        }
        let metrics = server.metrics();
        assert_eq!(metrics.finished_length.get(), 6);
        let total: usize = expected.iter().map(Vec::len).sum();
        assert_eq!(metrics.tokens_out.get() as usize, total);
        server.shutdown();
    }
}

#[test]
fn mid_stream_disconnect_frees_the_slot() {
    for mode in both_modes() {
        // One KV slot: if cancellation leaks it, the follow-up hangs.
        let server = start_server_with(long_model(), 1, 16, mode);
        let addr = server.addr();

        let body = prompt_json(&[1, 2], 480, true);
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(60)))
            .unwrap();
        stream
            .write_all(
                format!(
                    "POST /v1/completions HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
                    body.len()
                )
                .as_bytes(),
            )
            .unwrap();
        // Read a few bytes of the stream, then vanish mid-flight.
        let mut tmp = [0u8; 256];
        let n = stream.read(&mut tmp).unwrap();
        assert!(n > 0);
        drop(stream);

        // The slot must come back: a fresh request completes normally.
        let (status, resp) = post_completion(addr, &prompt_json(&[7, 8], 4, false));
        assert_eq!(status, 200, "mode {mode:?}: {resp}");
        let (tokens, reason) = completion_tokens(&resp);
        assert_eq!(reason, "length");
        assert_eq!(
            tokens,
            direct_tokens_on(long_model(), &[7, 8], 4),
            "mode {mode:?}"
        );

        let metrics = server.metrics();
        assert!(
            metrics.finished_cancelled.get() >= 1,
            "mode {mode:?}: disconnect did not cancel the sequence"
        );
        server.shutdown();
    }
}

#[test]
fn deadline_exceeded_returns_typed_error() {
    let server = start_server_with(long_model(), 1, 16, ConnMode::Auto);
    let addr = server.addr();
    let (status, body) = post_completion(
        addr,
        "{\"prompt\":[1,2],\"max_tokens\":480,\"deadline_ms\":5}",
    );
    assert_eq!(status, 504, "body: {body}");
    let doc = Json::parse(&body).unwrap();
    let err = doc.get("error").expect("typed error object");
    assert_eq!(
        err.get("type").unwrap().as_str().unwrap(),
        "deadline_exceeded"
    );
    assert!(err.get("partial_token_ids").unwrap().as_arr().is_some());
    assert!(server.metrics().finished_deadline.get() >= 1);
    server.shutdown();
}

#[test]
fn queue_full_sheds_with_429_and_retry_after() {
    // One slot and a one-deep queue: a burst must shed with 429s while
    // every accepted request still finishes correctly.
    let server = start_server(1, 1, ConnMode::Auto);
    let addr = server.addr();
    let handles: Vec<_> = (0..8u32)
        .map(|i| {
            std::thread::spawn(move || {
                let (status, _, resp) = http_request(
                    addr,
                    "POST",
                    "/v1/completions",
                    &prompt_json(&[1 + i], 8, false),
                );
                (status, resp)
            })
        })
        .collect();
    let mut ok = 0;
    let mut shed = 0;
    for h in handles {
        let (status, body) = h.join().unwrap();
        match status {
            200 => {
                let (_, reason) = completion_tokens(&body);
                assert_eq!(reason, "length");
                ok += 1;
            }
            429 => shed += 1,
            other => panic!("unexpected status {other}: {body}"),
        }
    }
    assert!(ok >= 1, "no request got through");
    assert!(shed >= 1, "burst of 8 against capacity 2 never shed");
    assert_eq!(server.metrics().resp_429.get(), shed);
    // The Retry-After header rides on the 429.
    let tight: Vec<_> = (0..4u32)
        .map(|i| {
            std::thread::spawn(move || {
                http_request(
                    addr,
                    "POST",
                    "/v1/completions",
                    &prompt_json(&[2 + i], 8, false),
                )
            })
        })
        .collect();
    let mut saw_retry_after = false;
    for h in tight {
        let (status, head, _) = h.join().unwrap();
        if status == 429 {
            assert!(head.contains("Retry-After: 1"), "head: {head}");
            saw_retry_after = true;
        }
    }
    // Not guaranteed every round sheds, but over 4 more against a busy
    // 1-slot server we expect at least one (tolerate none only if the
    // first burst drained unusually fast).
    let _ = saw_retry_after;
    server.shutdown();
}

#[test]
fn graceful_drain_finishes_in_flight_and_refuses_new() {
    for mode in both_modes() {
        let server = start_server(1, 16, mode);
        let addr = server.addr();
        let worker =
            std::thread::spawn(move || post_completion(addr, &prompt_json(&[3, 4], 30, false)));
        // Give the request time to land, then drain.
        std::thread::sleep(Duration::from_millis(50));
        server.drain();
        // New connections are refused (listener closed) or answered 503.
        match TcpStream::connect(addr) {
            Err(_) => {}
            Ok(mut s) => {
                s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
                let body = prompt_json(&[5], 2, false);
                let _ = s.write_all(
                    format!(
                        "POST /v1/completions HTTP/1.1\r\nHost: t\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
                        body.len()
                    )
                    .as_bytes(),
                );
                let mut raw = Vec::new();
                let _ = s.read_to_end(&mut raw);
                if !raw.is_empty() {
                    let (status, _, _) = parse_response(&raw);
                    assert_eq!(status, 503, "mode {mode:?}");
                }
            }
        }
        // The in-flight request still completes with its full output.
        let (status, body) = worker.join().unwrap();
        assert_eq!(status, 200, "mode {mode:?}: {body}");
        let (tokens, reason) = completion_tokens(&body);
        assert_eq!(reason, "length");
        assert_eq!(tokens.len(), 30);
        server.join();
    }
}

#[test]
fn healthz_and_metrics_routes_work() {
    let server = start_server(2, 16, ConnMode::Auto);
    let addr = server.addr();
    let (status, _, body) = http_request(addr, "GET", "/healthz", "");
    assert_eq!(status, 200);
    assert_eq!(body, "ok\n");
    let (status, body) = post_completion(addr, &prompt_json(&[1, 2], 3, false));
    assert_eq!(status, 200, "{body}");
    let (status, _, text) = http_request(addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    for key in [
        "tmac_requests_total{route=\"completions\"} 1",
        "tmac_tokens_generated_total 3",
        "tmac_finished_total{reason=\"length\"} 1",
        "tmac_kv_slots_total 2",
        "tmac_tokens_per_second",
        "tmac_ttft_ms_avg",
    ] {
        assert!(text.contains(key), "missing {key:?} in:\n{text}");
    }
    let (status, _, _) = http_request(addr, "GET", "/nope", "");
    assert_eq!(status, 404);
    let (status, head, _) = http_request(addr, "GET", "/v1/completions", "");
    assert_eq!(status, 405);
    assert!(head.contains("Allow: POST"));
    server.shutdown();
}

#[test]
fn malformed_traffic_gets_clean_4xx_and_never_wedges() {
    for mode in both_modes() {
        let server = start_server(2, 16, mode);
        let addr = server.addr();

        // Raw protocol garbage → 4xx/5xx status, connection closed cleanly.
        let raw_cases: Vec<(Vec<u8>, u16)> = vec![
            (b"GARBAGE\r\n\r\n".to_vec(), 400),
            (b"GET / HTTP/2.0\r\n\r\n".to_vec(), 505),
            (b"get / HTTP/1.1\r\n\r\n".to_vec(), 400),
            (
                b"POST / HTTP/1.1\r\nContent-Length: zap\r\n\r\n".to_vec(),
                400,
            ),
            (
                b"POST /v1/completions HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n".to_vec(),
                501,
            ),
            (
                format!("GET / HTTP/1.1\r\nX-Big: {}\r\n\r\n", "a".repeat(64 * 1024)).into_bytes(),
                431,
            ),
            (
                format!(
                    "POST /v1/completions HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
                    64 * 1024 * 1024
                )
                .into_bytes(),
                413,
            ),
        ];
        for (raw, want) in &raw_cases {
            let mut s = TcpStream::connect(addr).unwrap();
            s.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
            s.write_all(raw).unwrap();
            let mut resp = Vec::new();
            s.read_to_end(&mut resp).unwrap();
            let (status, _, _) = parse_response(&resp);
            assert_eq!(
                status,
                *want,
                "mode {mode:?} raw {:?}",
                String::from_utf8_lossy(&raw[..raw.len().min(40)])
            );
        }

        // A flood of unterminated header bytes must be rejected, not
        // buffered forever.
        {
            let mut s = TcpStream::connect(addr).unwrap();
            s.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
            let _ = s.write_all(&vec![b'x'; 32 * 1024]);
            let mut resp = Vec::new();
            s.read_to_end(&mut resp).unwrap();
            let (status, _, _) = parse_response(&resp);
            assert_eq!(status, 431, "mode {mode:?}");
        }

        // A truncated body (Content-Length promises more than is sent)
        // times out with 408 instead of wedging the connection forever.
        {
            let mut s = TcpStream::connect(addr).unwrap();
            s.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
            s.write_all(b"POST /v1/completions HTTP/1.1\r\nContent-Length: 50\r\n\r\n{\"pro")
                .unwrap();
            let mut resp = Vec::new();
            s.read_to_end(&mut resp).unwrap();
            let (status, _, _) = parse_response(&resp);
            assert_eq!(status, 408, "mode {mode:?}");
        }

        // Well-formed HTTP carrying bad JSON / bad fields → typed 400s.
        let body_cases = [
            ("{not json", "invalid_json"),
            ("[1,2,3]", "invalid_request"),
            ("{}", "invalid_request"),
            ("{\"prompt\":\"hi there\"}", "invalid_request"),
            ("{\"prompt\":[1,2.5]}", "invalid_request"),
            ("{\"prompt\":[1,99999]}", "invalid_request"),
            ("{\"prompt\":[]}", "invalid_request"),
            ("{\"prompt\":[1],\"max_tokens\":0}", "invalid_request"),
            (
                "{\"prompt\":[1],\"max_tokens\":5000}",
                "context_length_exceeded",
            ),
            ("{\"prompt\":[1],\"stream\":\"yes\"}", "invalid_request"),
            ("{\"prompt\":[1],\"deadline_ms\":-4}", "invalid_request"),
        ];
        for (body, kind) in body_cases {
            let (status, resp) = post_completion(addr, body);
            assert_eq!(status, 400, "mode {mode:?} body {body}: {resp}");
            let doc = Json::parse(&resp).unwrap();
            assert_eq!(
                doc.get("error")
                    .unwrap()
                    .get("type")
                    .unwrap()
                    .as_str()
                    .unwrap(),
                kind,
                "mode {mode:?} body {body}"
            );
        }

        // After all that abuse the server still serves real work.
        let (status, body) = post_completion(addr, &prompt_json(&[1, 2, 3], 4, false));
        assert_eq!(status, 200, "mode {mode:?}: {body}");
        let (tokens, _) = completion_tokens(&body);
        assert_eq!(tokens, direct_tokens(&[1, 2, 3], 4), "mode {mode:?}");
        server.shutdown();
    }
}

#[test]
fn bad_sampling_params_get_typed_400s() {
    let server = start_server(2, 16, ConnMode::Auto);
    let addr = server.addr();
    // Every sampling field rejects out-of-domain values with a typed 400
    // naming the field, never a panic or a silent default.
    let cases = [
        "{\"prompt\":[1],\"temperature\":-0.5}",
        "{\"prompt\":[1],\"temperature\":\"hot\"}",
        "{\"prompt\":[1],\"top_k\":-3}",
        "{\"prompt\":[1],\"top_p\":0}",
        "{\"prompt\":[1],\"top_p\":1.5}",
        "{\"prompt\":[1],\"repetition_penalty\":0}",
        "{\"prompt\":[1],\"repetition_penalty\":-1}",
        "{\"prompt\":[1],\"seed\":-7}",
        "{\"prompt\":[1],\"logit_bias\":[1,2]}",
        "{\"prompt\":[1],\"logit_bias\":{\"99999\":1.0}}",
        "{\"prompt\":[1],\"logit_bias\":{\"zap\":1.0}}",
        "{\"prompt\":[1],\"stop\":\"please\"}",
        "{\"prompt\":[1],\"stop\":[[]]}",
        "{\"prompt\":[1],\"stop\":[[99999]]}",
    ];
    for body in cases {
        let (status, resp) = post_completion(addr, body);
        assert_eq!(status, 400, "body {body}: {resp}");
        let doc = Json::parse(&resp).unwrap();
        assert_eq!(
            doc.get("error")
                .unwrap()
                .get("type")
                .unwrap()
                .as_str()
                .unwrap(),
            "invalid_request",
            "body {body}"
        );
    }
    server.shutdown();
}

#[test]
fn effective_sampling_params_are_echoed_in_responses() {
    let server = start_server(2, 16, ConnMode::Auto);
    let addr = server.addr();

    // Non-streaming: explicit fields come back verbatim, omitted ones as
    // their effective defaults (top_p 1, repetition_penalty 1).
    let body = "{\"prompt\":[1,2],\"max_tokens\":3,\"temperature\":0.7,\"top_k\":5,\"seed\":9}";
    let (status, resp) = post_completion(addr, body);
    assert_eq!(status, 200, "{resp}");
    let doc = Json::parse(&resp).unwrap();
    let s = doc.get("sampling").expect("sampling echo");
    let f = |k: &str| s.get(k).unwrap().as_f64().unwrap();
    assert_eq!(f("temperature"), 0.7f32 as f64);
    assert_eq!(f("top_k"), 5.0);
    assert_eq!(f("top_p"), 1.0);
    assert_eq!(f("repetition_penalty"), 1.0);
    assert_eq!(f("seed"), 9.0);

    // Streaming: the final usage frame carries the same echo.
    let body = "{\"prompt\":[1,2],\"max_tokens\":3,\"stream\":true,\"temperature\":0.7,\"seed\":9}";
    let mut sock = TcpStream::connect(addr).unwrap();
    sock.set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    let req = format!(
        "POST /v1/completions HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    sock.write_all(req.as_bytes()).unwrap();
    let mut raw = Vec::new();
    sock.read_to_end(&mut raw).unwrap();
    let text = String::from_utf8_lossy(&raw);
    let tail = text
        .lines()
        .filter_map(|l| l.strip_prefix("data: "))
        .rfind(|p| *p != "[DONE]")
        .expect("final SSE frame");
    let doc = Json::parse(tail).unwrap();
    let s = doc.get("sampling").expect("sampling echo in final frame");
    assert_eq!(
        s.get("temperature").unwrap().as_f64().unwrap(),
        0.7f32 as f64
    );
    assert_eq!(s.get("seed").unwrap().as_f64().unwrap(), 9.0);
    assert!(doc.get("usage").is_some(), "final frame keeps usage");
    server.shutdown();
}

#[test]
fn stop_sequences_finish_with_stop_reason_over_http() {
    let server = start_server(2, 16, ConnMode::Auto);
    let addr = server.addr();
    let prompt = [1u32, 2, 3];
    let full = direct_tokens(&prompt, 8);
    let stop: Vec<u32> = full[1..3].to_vec();
    let hit = (1..=full.len())
        .find(|&n| full[..n].ends_with(&stop))
        .unwrap();

    // Nested form: list of stop sequences.
    let body = format!(
        "{{\"prompt\":[1,2,3],\"max_tokens\":8,\"stop\":[[{},{}]]}}",
        stop[0], stop[1]
    );
    let (status, resp) = post_completion(addr, &body);
    assert_eq!(status, 200, "{resp}");
    let (tokens, reason) = completion_tokens(&resp);
    assert_eq!(tokens, full[..hit], "stop must truncate the served tokens");
    assert_eq!(reason, "stop");

    // Flat shorthand: one stop sequence.
    let body = format!(
        "{{\"prompt\":[1,2,3],\"max_tokens\":8,\"stop\":[{},{}]}}",
        stop[0], stop[1]
    );
    let (status, resp) = post_completion(addr, &body);
    assert_eq!(status, 200, "{resp}");
    let (tokens, reason) = completion_tokens(&resp);
    assert_eq!(tokens, full[..hit]);
    assert_eq!(reason, "stop");
    server.shutdown();
}

#[test]
fn seeded_sampling_is_reproducible_and_matches_direct_over_http() {
    let server = start_server(2, 16, ConnMode::Auto);
    let addr = server.addr();
    let body =
        "{\"prompt\":[3,1,4],\"max_tokens\":6,\"temperature\":0.9,\"top_p\":0.95,\"seed\":5}";

    let (status, first) = post_completion(addr, body);
    assert_eq!(status, 200, "{first}");
    let (tokens_a, _) = completion_tokens(&first);
    let (_, second) = post_completion(addr, body);
    let (tokens_b, _) = completion_tokens(&second);
    assert_eq!(tokens_a, tokens_b, "same seed+params must reproduce");

    // And the served tokens are exactly what a direct Scheduler run with
    // the same SamplingParams produces.
    let params = SamplingParams {
        temperature: 0.9,
        top_p: 0.95,
        seed: 5,
        ..SamplingParams::default()
    };
    let ctx = ExecCtx::new(1);
    let mut sched = Scheduler::new(tiny_model(), SchedulerConfig::default());
    let id = sched
        .submit(SubmitRequest::greedy(&[3, 1, 4], 6).with_sampling(params))
        .unwrap();
    let done = sched.run_to_completion(&ctx).unwrap();
    let direct = done.into_iter().find(|f| f.id == id).unwrap().tokens;
    assert_eq!(tokens_a, direct, "served sampled tokens diverged");

    // A biased request is forced onto one token end to end.
    let (status, resp) = post_completion(
        addr,
        "{\"prompt\":[1],\"max_tokens\":4,\"temperature\":1.0,\"logit_bias\":{\"42\":1000000000}}",
    );
    assert_eq!(status, 200, "{resp}");
    let (tokens, _) = completion_tokens(&resp);
    assert_eq!(tokens, vec![42; 4]);
    server.shutdown();
}

#[test]
fn metrics_stay_consistent_and_health_ok_after_mixed_traffic() {
    // After a burst of mixed traffic (success, SSE, 404s, a shed-free mix)
    // fully drains, the metrics snapshot must balance: every request
    // counted got exactly one response counted, and every gauge is back to
    // zero. This is the same invariant the chaos harness asserts after a
    // fault storm — here it gates the happy path in the tier-1 suite.
    for mode in both_modes() {
        let server = start_server(2, 16, mode);
        let addr = server.addr();
        let metrics = server.metrics();

        let clients: Vec<_> = (0..6)
            .map(|i| {
                std::thread::spawn(move || {
                    let prompt = vec![(i as u32) + 1, 7];
                    if i % 2 == 0 {
                        stream_completion(addr, &prompt, 4);
                    } else {
                        let (status, _) = post_completion(addr, &prompt_json(&prompt, 4, false));
                        assert_eq!(status, 200);
                    }
                })
            })
            .collect();
        for c in clients {
            c.join().unwrap();
        }
        let (status, _, _) = http_request(addr, "GET", "/no/such/path", "");
        assert_eq!(status, 404);
        let (status, _, body) = http_request(addr, "GET", "/healthz", "");
        assert_eq!(status, 200, "{body}");

        // Quiesce: all client sockets above are closed (Connection: close)
        // and the step loop refreshes the scheduler gauges on its next
        // tick, so poll until every gauge reads zero.
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while std::time::Instant::now() < deadline
            && (metrics.connections.get() > 0
                || metrics.active_seqs.get() > 0
                || metrics.queue_depth.get() > 0
                || metrics.kv_slots_used.get() > 0)
        {
            std::thread::sleep(Duration::from_millis(10));
        }
        let violations = metrics.consistency_violations();
        assert!(violations.is_empty(), "{mode:?}: {violations:?}");
        server.shutdown();
    }
}
