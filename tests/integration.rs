//! Cross-crate integration tests: the T-MAC kernels, the dequantization
//! baseline and the f32 reference must agree on the *same* quantized
//! weights, across bit-widths, option sets, shapes and thread counts.

use tmac::baseline::DequantLinear;
use tmac::core::kernel::scalar::gemv_reference;
use tmac::core::ExecCtx;
use tmac::core::{KernelOpts, TmacLinear};
use tmac::quant::{bitnet, gptq, rtn};
use tmac::simd::f32ops::nmse;

fn weights(m: usize, k: usize, seed: u64) -> Vec<f32> {
    (0..m * k)
        .map(|i| {
            (((i as u64).wrapping_mul(seed * 2 + 1) % 97) as f32 / 48.5 - 1.0) * 0.4
                + ((i as f32) * 0.013).sin() * 0.3
        })
        .collect()
}

fn act(k: usize, seed: u64) -> Vec<f32> {
    (0..k)
        .map(|i| ((i as f32) * 0.029 + seed as f32).cos() * 0.8)
        .collect()
}

#[test]
fn tmac_tracks_reference_across_bits_and_shapes() {
    let ctx = ExecCtx::new(2);
    for &(m, k) in &[(64usize, 128usize), (96, 256), (33, 160)] {
        let w = weights(m, k, 3);
        let a = act(k, 3);
        for bits in 1..=4u8 {
            let qm = rtn::quantize(&w, m, k, bits, 32).unwrap();
            let reference = gemv_reference(&qm, &a);
            let tl = TmacLinear::new(&qm, KernelOpts::tmac()).unwrap();
            let mut out = vec![0f32; m];
            tl.gemv(&a, &mut out, &ctx).unwrap();
            let e = nmse(&out, &reference);
            assert!(e < 5e-3, "m={m} k={k} bits={bits} nmse={e}");
        }
    }
}

#[test]
fn tmac_and_baseline_agree_on_identical_weights() {
    // Both consume the same QuantizedMatrix; their only divergence is
    // activation quantization (baseline) vs table quantization (T-MAC).
    let ctx = ExecCtx::new(2);
    let (m, k) = (128, 256);
    let w = weights(m, k, 7);
    let a = act(k, 7);
    for bits in 1..=4u8 {
        let qm = rtn::quantize(&w, m, k, bits, 32).unwrap();
        let tl = TmacLinear::new(&qm, KernelOpts::tmac()).unwrap();
        let bl = DequantLinear::new(&qm).unwrap();
        let mut t_out = vec![0f32; m];
        let mut b_out = vec![0f32; m];
        tl.gemv(&a, &mut t_out, &ctx).unwrap();
        bl.gemv(&a, &mut b_out, &ctx).unwrap();
        let e = nmse(&t_out, &b_out);
        assert!(e < 2e-3, "bits={bits} cross-backend nmse={e}");
    }
}

#[test]
fn every_opt_combination_matches_the_reference() {
    let ctx = ExecCtx::new(2);
    let (m, k) = (64, 128);
    let w = weights(m, k, 11);
    let a = act(k, 11);
    let qm = rtn::quantize(&w, m, k, 3, 32).unwrap();
    let reference = gemv_reference(&qm, &a);
    let mut combos = KernelOpts::breakdown_ladder();
    combos.push(("tmac_mirror", KernelOpts::tmac_mirror()));
    let mut fa_mirror = KernelOpts::tmac_fast_aggregation();
    fa_mirror.mirror = true;
    combos.push(("fa_mirror", fa_mirror));
    for (name, opts) in combos {
        let tl = TmacLinear::new(&qm, opts).unwrap();
        let mut out = vec![0f32; m];
        tl.gemv(&a, &mut out, &ctx).unwrap();
        let e = nmse(&out, &reference);
        let tol = if opts.fast_aggregation { 0.25 } else { 5e-3 };
        assert!(e < tol, "{name}: nmse={e}");
    }
}

#[test]
fn thread_counts_do_not_change_results() {
    let (m, k) = (160, 192);
    let w = weights(m, k, 13);
    let a = act(k, 13);
    let qm = rtn::quantize(&w, m, k, 2, 32).unwrap();
    let tl = TmacLinear::new(&qm, KernelOpts::tmac()).unwrap();
    let mut outs = Vec::new();
    for threads in [1usize, 2, 3, 5] {
        let ctx = ExecCtx::new(threads);
        let mut out = vec![0f32; m];
        tl.gemv(&a, &mut out, &ctx).unwrap();
        outs.push(out);
    }
    for o in &outs[1..] {
        assert_eq!(&outs[0], o, "thread count changed results");
    }
}

#[test]
fn gemm_equals_row_by_row_gemv() {
    let ctx = ExecCtx::new(2);
    let (m, k, n) = (96, 128, 11);
    let w = weights(m, k, 17);
    let acts: Vec<f32> = (0..n).flat_map(|s| act(k, s as u64 + 20)).collect();
    let qm = rtn::quantize(&w, m, k, 4, 32).unwrap();
    let tl = TmacLinear::new(&qm, KernelOpts::tmac()).unwrap();
    let mut gemm_out = vec![0f32; n * m];
    tl.gemm(&acts, n, &mut gemm_out, &ctx).unwrap();
    for ni in 0..n {
        let mut row = vec![0f32; m];
        tl.gemv(&acts[ni * k..(ni + 1) * k], &mut row, &ctx)
            .unwrap();
        assert_eq!(&gemm_out[ni * m..(ni + 1) * m], &row[..], "row {ni}");
    }
}

#[test]
fn gptq_weights_run_through_both_systems() {
    let ctx = ExecCtx::new(1);
    let (m, k) = (64, 128);
    let w = weights(m, k, 23);
    let a = act(k, 23);
    let qm = gptq::quantize(&w, m, k, 4, 32).unwrap();
    let reference = gemv_reference(&qm, &a);
    let tl = TmacLinear::new(&qm, KernelOpts::tmac()).unwrap();
    let bl = DequantLinear::new(&qm).unwrap();
    let mut t_out = vec![0f32; m];
    let mut b_out = vec![0f32; m];
    tl.gemv(&a, &mut t_out, &ctx).unwrap();
    bl.gemv(&a, &mut b_out, &ctx).unwrap();
    assert!(nmse(&t_out, &reference) < 5e-3);
    assert!(nmse(&b_out, &reference) < 5e-3);
}

#[test]
fn bitnet_ternary_runs_as_two_bit() {
    let ctx = ExecCtx::new(2);
    let (m, k) = (96, 160);
    let w = weights(m, k, 29);
    let a = act(k, 29);
    let qm = bitnet::quantize(&w, m, k, 32).unwrap();
    assert_eq!(qm.bits, 2);
    let reference = gemv_reference(&qm, &a);
    let tl = TmacLinear::new(&qm, KernelOpts::tmac()).unwrap();
    let mut out = vec![0f32; m];
    tl.gemv(&a, &mut out, &ctx).unwrap();
    assert!(nmse(&out, &reference) < 5e-3);
}

#[test]
fn shape_errors_are_reported_not_panicked() {
    let ctx = ExecCtx::new(1);
    let (m, k) = (32, 64);
    let qm = rtn::quantize(&weights(m, k, 31), m, k, 2, 32).unwrap();
    let tl = TmacLinear::new(&qm, KernelOpts::tmac()).unwrap();
    let a = act(k, 31);
    // Wrong activation length.
    let mut out = vec![0f32; m];
    assert!(tl.gemv(&a[..32], &mut out, &ctx).is_err());
    // Wrong output length.
    let mut short = vec![0f32; m - 1];
    assert!(tl.gemv(&a, &mut short, &ctx).is_err());
    // Non-finite activations.
    let mut bad = a.clone();
    bad[0] = f32::NAN;
    assert!(tl.gemv(&bad, &mut out, &ctx).is_err());
    // K not a multiple of the quant group.
    assert!(rtn::quantize(&weights(4, 33, 1), 4, 33, 2, 32).is_err());
}

#[test]
fn fast_aggregation_requires_power_of_two_groups() {
    let (m, k) = (32, 192);
    // group_size 48 -> kg_per_block = 12, not a power of two.
    let qm = rtn::quantize(&weights(m, k, 37), m, k, 2, 48).unwrap();
    let mut opts = KernelOpts::tmac_fast_aggregation();
    opts.tile_k = 96; // multiple of the 48-wide quant group
    let tl = TmacLinear::new(&qm, opts).unwrap();
    let ctx = ExecCtx::new(1);
    let mut out = vec![0f32; m];
    assert!(tl.gemv(&act(k, 37), &mut out, &ctx).is_err());
}

#[test]
fn non_divisible_m_is_padded_correctly() {
    // M = 50 pads to 64 internally; outputs beyond M must not be touched.
    let ctx = ExecCtx::new(2);
    let (m, k) = (50, 96);
    let w = weights(m, k, 41);
    let a = act(k, 41);
    let qm = rtn::quantize(&w, m, k, 4, 32).unwrap();
    let reference = gemv_reference(&qm, &a);
    let tl = TmacLinear::new(&qm, KernelOpts::tmac()).unwrap();
    let mut out = vec![0f32; m];
    tl.gemv(&a, &mut out, &ctx).unwrap();
    assert!(nmse(&out, &reference) < 5e-3);
}
