//! End-to-end model tests: the full transformer stack on every backend.

use tmac::core::ExecCtx;
use tmac::llm::{
    eval as quality, BackendKind, Engine, GenRequest, Model, ModelConfig, WeightQuant,
};

fn tiny() -> ModelConfig {
    ModelConfig::tiny()
}

#[test]
fn all_backends_generate_plausible_tokens() {
    let ctx = ExecCtx::new(2);
    for kind in [
        BackendKind::F32,
        BackendKind::Dequant,
        BackendKind::Tmac(tmac::core::KernelOpts::tmac()),
        BackendKind::Tmac(tmac::core::KernelOpts::tmac_fast_aggregation()),
    ] {
        let model = Model::synthetic(&tiny(), WeightQuant::Rtn(4), kind, 5).unwrap();
        let mut engine = Engine::new(model);
        let tokens = engine
            .generate(&GenRequest::greedy(&[1, 2], 6), &ctx)
            .unwrap()
            .tokens;
        assert_eq!(tokens.len(), 6, "{kind:?}");
        assert!(tokens.iter().all(|&t| (t as usize) < tiny().vocab));
    }
}

#[test]
fn quantized_backends_agree_with_each_other() {
    // T-MAC and the dequant baseline share quantized weights; their logits
    // must stay close through a full forward stack.
    let ctx = ExecCtx::new(1);
    let run = |kind| {
        let model = Model::synthetic(&tiny(), WeightQuant::Rtn(4), kind, 6).unwrap();
        let mut engine = Engine::new(model);
        engine.step(3, 0, &ctx).unwrap()
    };
    let d = run(BackendKind::Dequant);
    let t = run(BackendKind::Tmac(tmac::core::KernelOpts::tmac()));
    let e = tmac::simd::f32ops::nmse(&t, &d);
    assert!(e < 0.05, "logit nmse {e}");
}

#[test]
fn bitnet_model_runs_end_to_end() {
    let ctx = ExecCtx::new(2);
    let model = Model::synthetic(
        &tiny(),
        WeightQuant::BitnetTernary,
        BackendKind::Tmac(tmac::core::KernelOpts::tmac()),
        7,
    )
    .unwrap();
    let mut engine = Engine::new(model);
    let tokens = engine
        .generate(&GenRequest::greedy(&[4, 5, 6], 5), &ctx)
        .unwrap()
        .tokens;
    assert_eq!(tokens.len(), 5);
}

#[test]
fn quality_pipeline_runs_for_all_backends() {
    let ctx = ExecCtx::new(1);
    let mut reference =
        Engine::new(Model::synthetic(&tiny(), WeightQuant::Rtn(4), BackendKind::F32, 8).unwrap());
    let seqs = quality::teacher_sequences(&mut reference, 2, 6, 1, &ctx).unwrap();
    for kind in [
        BackendKind::Dequant,
        BackendKind::Tmac(tmac::core::KernelOpts::tmac()),
    ] {
        let mut engine =
            Engine::new(Model::synthetic(&tiny(), WeightQuant::Rtn(4), kind, 8).unwrap());
        let ppl = quality::perplexity(&mut engine, &seqs, &ctx).unwrap();
        assert!(ppl.is_finite() && ppl > 1.0, "{kind:?} ppl={ppl}");
        let acc = quality::choice_agreement(&mut reference, &mut engine, 8, 2, &ctx).unwrap();
        assert!((0.0..=100.0).contains(&acc));
    }
}

#[test]
fn decode_throughput_extrapolation_is_consistent() {
    let ctx = ExecCtx::new(1);
    let model = Model::synthetic(&tiny(), WeightQuant::Rtn(2), BackendKind::F32, 9).unwrap();
    let mut engine = Engine::new(model);
    let stats = engine.measure_decode(8, &ctx).unwrap();
    let same = stats.extrapolate_layers(2, 2);
    assert!((same.seconds_per_token - stats.seconds_per_token).abs() < 1e-12);
    let deeper = stats.extrapolate_layers(2, 8);
    assert!(deeper.seconds_per_token > stats.seconds_per_token);
}
