//! Model container round-trips: the persistence layer's acceptance suite.
//!
//! The invariants (ISSUE 5):
//! * `f32 → quantize → .tmac → load` yields **bit-exact** logits vs the
//!   never-persisted in-memory model, across bits 1–4 and every backend
//!   (the `f32` backend runs on dequantized weights on both sides — the
//!   container stores quantized weights only).
//! * GGUF write→read preserves tensors and metadata byte-for-byte.
//! * Mmap-loaded and owned-copy loads agree bit-for-bit.
//! * Corrupt inputs (truncation, bad magic, version mismatch, checksum
//!   failure, shape/config disagreement) return typed `IoError`s — never
//!   panic. Fault injection is byte-level on real files.
//! * A model served through the `Scheduler` **from the file** produces the
//!   tokens the in-memory single-stream engine produces.
//!
//! Thread count comes from `TMAC_TEST_THREADS` (default 2).

use std::path::PathBuf;
use std::sync::Arc;
use tmac::core::ExecCtx;
use tmac::io::{GgufFile, GgufValue, GgufWriter, IoError, Mapping, TmacContainer};
use tmac::llm::{
    BackendBuilder, BackendError, BackendKind, Engine, F32Backend, GenRequest, KvCache,
    KvPrecision, Linear, LoadMode, Model, ModelConfig, ModelIoError, Scheduler, SchedulerConfig,
    Scratch, SubmitRequest, WeightQuant,
};
use tmac::quant::QuantizedMatrix;

fn test_threads() -> usize {
    std::env::var("TMAC_TEST_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(2)
}

fn ctx() -> ExecCtx {
    ExecCtx::new(test_threads())
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tmac-model-io-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

/// Greedy logits after a short teacher-forced run — the bit-exactness
/// probe used throughout.
fn run_logits(m: &Model, ctx: &ExecCtx) -> Vec<f32> {
    let mut cache = KvCache::new(&m.cfg);
    let mut s = Scratch::new(&m.cfg);
    for pos in 0..4 {
        m.forward(
            (7 + pos * 3) as u32 % m.cfg.vocab as u32,
            pos,
            &mut cache,
            &mut s,
            ctx,
        )
        .unwrap();
    }
    s.logits.clone()
}

/// The `f32` reference backend built from *dequantized* weights — the
/// in-memory twin of what a container load materializes (containers store
/// quantized weights only).
struct DequantizedF32;
impl BackendBuilder for DequantizedF32 {
    fn build(&self, qm: &QuantizedMatrix, _f32_weights: &[f32]) -> Result<Linear, BackendError> {
        Ok(Linear::from_backend(F32Backend::new(
            &qm.dequantize(),
            qm.rows,
            qm.cols,
        )?))
    }
    fn label(&self) -> String {
        "f32(dequantized)".into()
    }
}

#[test]
fn tmac_roundtrip_is_bit_exact_across_bits_and_backends() {
    let ctx = ctx();
    let cfg = ModelConfig::tiny();
    for bits in 1..=4u8 {
        let path = tmp(&format!("rt-{bits}.tmac"));
        // Build and persist once, from the T-MAC backend.
        let src = Model::synthetic(
            &cfg,
            WeightQuant::Rtn(bits),
            BackendKind::Tmac(tmac::core::KernelOpts::tmac()),
            42,
        )
        .unwrap();
        src.save_tmac(&path).unwrap();

        // Reload into every backend; each must match the in-memory twin
        // built through the *same* builder, bit-for-bit. (The `f32` case
        // runs on dequantized weights on both sides — the container stores
        // quantized weights only.)
        let tmac = BackendKind::Tmac(tmac::core::KernelOpts::tmac());
        let fa = BackendKind::Tmac(tmac::core::KernelOpts::tmac_fast_aggregation());
        let mirror = BackendKind::Tmac(tmac::core::KernelOpts::tmac_mirror());
        let dequant = BackendKind::Dequant;
        let f32ref = DequantizedF32;
        let cases: Vec<(&str, &dyn BackendBuilder)> = vec![
            ("tmac", &tmac),
            ("tmac-fa", &fa),
            ("tmac-mirror", &mirror),
            ("dequant", &dequant),
            ("f32", &f32ref),
        ];
        for (name, builder) in cases {
            let loaded = Model::from_tmac(&path, builder, LoadMode::Mmap).unwrap();
            let twin = Model::synthetic_with(&cfg, WeightQuant::Rtn(bits), builder, 42).unwrap();
            assert_eq!(
                run_logits(&loaded, &ctx),
                run_logits(&twin, &ctx),
                "bits={bits} backend={name}: container round-trip must be bit-exact"
            );
            assert_eq!(loaded.cfg, cfg);
            assert_eq!(loaded.quant, WeightQuant::Rtn(bits));
        }
        std::fs::remove_file(&path).unwrap();
    }
}

#[test]
fn bitnet_ternary_roundtrip_is_bit_exact() {
    let ctx = ctx();
    let cfg = ModelConfig::tiny();
    let kind = BackendKind::Tmac(tmac::core::KernelOpts::tmac());
    let src = Model::synthetic(&cfg, WeightQuant::BitnetTernary, kind, 5).unwrap();
    let path = tmp("bitnet.tmac");
    src.save_tmac(&path).unwrap();
    let loaded = Model::from_tmac(&path, &kind, LoadMode::Mmap).unwrap();
    assert_eq!(loaded.quant, WeightQuant::BitnetTernary);
    assert_eq!(run_logits(&loaded, &ctx), run_logits(&src, &ctx));
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn mmap_and_owned_copy_loads_agree() {
    let ctx = ctx();
    let kind = BackendKind::Tmac(tmac::core::KernelOpts::tmac());
    let src = Model::synthetic(&ModelConfig::tiny(), WeightQuant::Rtn(2), kind, 11).unwrap();
    let path = tmp("modes.tmac");
    src.save_tmac(&path).unwrap();
    let mapped = Model::from_tmac(&path, &kind, LoadMode::Mmap).unwrap();
    let copied = Model::from_tmac(&path, &kind, LoadMode::Copy).unwrap();
    assert_eq!(run_logits(&mapped, &ctx), run_logits(&copied, &ctx));
    // And the container views themselves agree byte-for-byte.
    let cm = TmacContainer::open(&path, LoadMode::Mmap).unwrap();
    let cc = TmacContainer::open(&path, LoadMode::Copy).unwrap();
    assert_eq!(cm.tensor_names(), cc.tensor_names());
    for name in cm.tensor_names() {
        if cm.is_plan(name) {
            let (a, b) = (cm.plan(name).unwrap(), cc.plan(name).unwrap());
            assert_eq!(a.perm_stream_bytes(), b.perm_stream_bytes(), "{name}");
            assert_eq!(a.perm_scales(), b.perm_scales(), "{name}");
            assert!(a.is_borrowed(), "{name}: mmap plan must borrow");
        } else {
            assert_eq!(
                cm.f32_tensor(name).unwrap(),
                cc.f32_tensor(name).unwrap(),
                "{name}"
            );
        }
    }
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn gguf_model_roundtrip_and_byte_preservation() {
    let ctx = ctx();
    let kind = BackendKind::Tmac(tmac::core::KernelOpts::tmac());
    let src = Model::synthetic(&ModelConfig::tiny(), WeightQuant::Rtn(3), kind, 9).unwrap();
    let path = tmp("model.gguf");
    src.save_gguf(&path).unwrap();

    // Model-level: reload (re-packs offline) → bit-exact logits.
    let loaded = Model::from_gguf(&path, &kind, LoadMode::Mmap).unwrap();
    assert_eq!(run_logits(&loaded, &ctx), run_logits(&src, &ctx));

    // Byte-level: parse, re-write through the writer, compare images.
    let original = std::fs::read(&path).unwrap();
    let f = GgufFile::parse(Arc::new(Mapping::from_bytes(&original))).unwrap();
    let mut w = GgufWriter::new();
    for (k, v) in f.meta_entries() {
        w.meta(k, v.clone());
    }
    for t in f.tensors() {
        w.tensor(
            &t.name,
            &t.dims,
            t.dtype,
            f.tensor_bytes(&t.name).unwrap().to_vec(),
        )
        .unwrap();
    }
    assert_eq!(
        w.to_bytes(),
        original,
        "GGUF write→read→write must preserve every byte"
    );
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn corrupt_containers_fail_typed_never_panic() {
    let kind = BackendKind::Tmac(tmac::core::KernelOpts::tmac());
    let src = Model::synthetic(&ModelConfig::tiny(), WeightQuant::Rtn(2), kind, 3).unwrap();
    let path = tmp("fault.tmac");
    src.save_tmac(&path).unwrap();
    let good = std::fs::read(&path).unwrap();
    let reload = |bytes: &[u8]| -> Result<Model, ModelIoError> {
        std::fs::write(&path, bytes).unwrap();
        Model::from_tmac(&path, &kind, LoadMode::Copy)
    };

    // Bad magic.
    let mut bad = good.clone();
    bad[0] ^= 0xff;
    assert!(matches!(
        reload(&bad),
        Err(ModelIoError::Io(IoError::BadMagic { .. }))
    ));

    // Version mismatch.
    let mut bad = good.clone();
    bad[4] = 2;
    assert!(matches!(
        reload(&bad),
        Err(ModelIoError::Io(IoError::Version { found: 2, .. }))
    ));

    // Truncation at every structural depth: magic, header, index, data.
    for cut in [1, 6, 14, 60, good.len() / 3, good.len() - 64] {
        assert!(
            reload(&good[..cut]).is_err(),
            "truncation at {cut} must fail"
        );
    }

    // Checksum failure: flip one bit deep in the data region.
    let mut bad = good.clone();
    let n = bad.len();
    bad[n - 64] ^= 0x01;
    assert!(matches!(
        reload(&bad),
        Err(ModelIoError::Io(IoError::Checksum { .. }))
    ));

    // Config/shape disagreement: claim a different dim in the metadata.
    // (Index-level edit: rewrite via the container API instead of blind
    // byte patching — the dim lives in a varint-free u64 we can find.)
    let needle = (ModelConfig::tiny().dim as u64).to_le_bytes();
    let key = b"tmac.cfg.dim";
    let pos = good
        .windows(key.len())
        .position(|w| w == key)
        .expect("dim key in index");
    let vpos = pos + key.len() + 4; // skip value-type u32
    assert_eq!(&good[vpos..vpos + 8], needle, "located the dim value");
    let mut bad = good.clone();
    bad[vpos..vpos + 8].copy_from_slice(&128u64.to_le_bytes());
    assert!(matches!(
        reload(&bad),
        Err(ModelIoError::Io(IoError::ShapeMismatch(_)))
    ));

    std::fs::remove_file(&path).unwrap();
}

#[test]
fn gguf_meta_edits_fail_typed() {
    // Missing required metadata reports which key.
    let mut w = GgufWriter::new();
    w.meta("general.name", GgufValue::String("x".into()));
    let path = tmp("incomplete.gguf");
    w.write(&path).unwrap();
    let err = Model::from_gguf(
        &path,
        &BackendKind::Tmac(tmac::core::KernelOpts::tmac()),
        LoadMode::Copy,
    );
    assert!(matches!(
        err,
        Err(ModelIoError::Io(IoError::MissingMeta(_)))
    ));
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn scheduler_serves_bit_identical_tokens_from_the_file() {
    // The end-to-end acceptance property: a model saved to `.tmac`,
    // reloaded via mmap, and served through the continuous-batching
    // Scheduler produces exactly the tokens the never-persisted in-memory
    // model produces through a dedicated single-stream engine.
    let ctx = ctx();
    let kind = BackendKind::Tmac(tmac::core::KernelOpts::tmac());
    let src = Model::synthetic(&ModelConfig::tiny(), WeightQuant::Rtn(2), kind, 23).unwrap();
    let path = tmp("serve.tmac");
    src.save_tmac(&path).unwrap();

    let prompts: Vec<Vec<u32>> = (0..5)
        .map(|i| {
            (0..(i % 3 + 1))
                .map(|j| (i * 7 + j * 3 + 1) as u32)
                .collect()
        })
        .collect();
    let n_new = 5;
    let mut engine = Engine::new(src);
    let singles: Vec<Vec<u32>> = prompts
        .iter()
        .map(|p| {
            engine
                .generate(&GenRequest::greedy(p, n_new), &ctx)
                .unwrap()
                .tokens
        })
        .collect();

    for max_batch in [1, 3] {
        let mut sched = Scheduler::from_file(
            &path,
            &kind,
            LoadMode::Mmap,
            SchedulerConfig {
                max_batch,
                prefill_chunk: 4,
                ..SchedulerConfig::default()
            },
        )
        .unwrap();
        let ids: Vec<_> = prompts
            .iter()
            .map(|p| sched.submit(SubmitRequest::greedy(p, n_new)).unwrap())
            .collect();
        let done = sched.run_to_completion(&ctx).unwrap();
        for (i, id) in ids.iter().enumerate() {
            let f = done.iter().find(|f| f.id == *id).unwrap();
            assert_eq!(
                f.tokens, singles[i],
                "max_batch={max_batch} sequence {i}: file-served tokens diverged"
            );
        }
    }
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn i8_kv_models_roundtrip_with_their_precision() {
    let ctx = ctx();
    let kind = BackendKind::Tmac(tmac::core::KernelOpts::tmac());
    let cfg = ModelConfig::tiny().with_kv(KvPrecision::I8);
    let src = Model::synthetic(&cfg, WeightQuant::Rtn(2), kind, 31).unwrap();
    let path = tmp("i8kv.tmac");
    src.save_tmac(&path).unwrap();
    let loaded = Model::from_tmac(&path, &kind, LoadMode::Mmap).unwrap();
    assert_eq!(loaded.cfg.kv_precision, KvPrecision::I8);
    assert_eq!(run_logits(&loaded, &ctx), run_logits(&src, &ctx));
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn engine_loads_either_format_by_extension() {
    let ctx = ctx();
    let kind = BackendKind::Tmac(tmac::core::KernelOpts::tmac());
    let src = Model::synthetic(&ModelConfig::tiny(), WeightQuant::Rtn(2), kind, 17).unwrap();
    let reference = {
        let mut e = Engine::new(src.clone());
        e.generate(&GenRequest::greedy(&[1, 2, 3], 6), &ctx)
            .unwrap()
            .tokens
    };
    for name in ["ext.tmac", "ext.gguf"] {
        let path = tmp(name);
        src.save_file(&path).unwrap();
        let mut e = Engine::from_file(&path, &kind, LoadMode::Mmap).unwrap();
        assert_eq!(
            e.generate(&GenRequest::greedy(&[1, 2, 3], 6), &ctx)
                .unwrap()
                .tokens,
            reference,
            "{name}"
        );
        std::fs::remove_file(&path).unwrap();
    }
}
