//! Paged-KV integration tests: the pooled page cache with radix-prefix
//! sharing must be invisible to the numerics. Decoding through the block
//! table — across page boundaries, with shared prefixes, copy-on-write
//! forks, and budgeted eviction — must produce bit-identical tokens to a
//! private single-stream engine, at every bit-width and KV precision.
//!
//! The page-geometry unit tests live in `crates/llm/src/kv.rs`; this
//! binary covers the end-to-end serving properties on top of them.

use tmac::core::ExecCtx;
use tmac::llm::batch::{Scheduler, SchedulerConfig, SubmitRequest};
use tmac::llm::{
    BackendKind, Engine, GenRequest, KvPrecision, Model, ModelConfig, WeightQuant, PAGE_POSITIONS,
};

fn ctx() -> ExecCtx {
    ExecCtx::new(2)
}

/// A tiny geometry whose context spans three KV pages, so prefill and
/// decode both cross page boundaries.
fn paged_cfg(precision: KvPrecision) -> ModelConfig {
    ModelConfig {
        name: "paged-test".into(),
        seq_max: 3 * PAGE_POSITIONS,
        kv_precision: precision,
        ..ModelConfig::tiny()
    }
}

fn model(cfg: &ModelConfig, bits: u8, seed: u64) -> Model {
    Model::synthetic(
        cfg,
        WeightQuant::Rtn(bits),
        BackendKind::Tmac(tmac::core::KernelOpts::tmac()),
        seed,
    )
    .unwrap()
}

fn prompt_of(len: usize, salt: u32, vocab: usize) -> Vec<u32> {
    (0..len as u32)
        .map(|i| (i * 7 + salt * 13 + 1) % vocab as u32)
        .collect()
}

#[test]
fn paged_decode_is_bit_exact_across_page_boundaries() {
    // Prefill ends 4 positions short of the second page boundary, decode
    // runs 12 tokens past it: the block-table walk must not change a bit
    // vs the single-stream engine, for every bit-width and KV precision.
    let ctx = ctx();
    for precision in [KvPrecision::F32, KvPrecision::I8] {
        let cfg = paged_cfg(precision);
        for bits in 1..=4u8 {
            let m = model(&cfg, bits, 40 + bits as u64);
            let prompt = prompt_of(2 * PAGE_POSITIONS - 4, bits as u32, cfg.vocab);
            let n_new = 12;

            let mut engine = Engine::new(m.clone());
            let expected = engine
                .generate(&GenRequest::greedy(&prompt, n_new), &ctx)
                .unwrap()
                .tokens;

            // Private (cache_prompt off) exercises the pure paged path;
            // cached exercises prefix publication on top of it.
            for cache_prompt in [false, true] {
                let mut sched = Scheduler::new(m.clone(), SchedulerConfig::default());
                let id = sched
                    .submit(SubmitRequest::greedy(&prompt, n_new).with_cache_prompt(cache_prompt))
                    .unwrap();
                let done = sched.run_to_completion(&ctx).unwrap();
                let f = done.iter().find(|f| f.id == id).unwrap();
                assert_eq!(
                    f.tokens, expected,
                    "bits {bits} {precision:?} cache_prompt={cache_prompt} diverged"
                );
            }
        }
    }
}

#[test]
fn shared_prefix_requests_match_private_generate_with_fewer_pages() {
    // Three requests sharing a two-page system prefix: outputs must be
    // bit-exact vs private generation, the radix index must report hits
    // covering the shared pages, and the arena must stay strictly below
    // the dense (3 sequences x 3 pages) accounting.
    let ctx = ctx();
    let cfg = paged_cfg(KvPrecision::F32);
    let m = model(&cfg, 2, 91);
    let prefix = prompt_of(2 * PAGE_POSITIONS - 2, 3, cfg.vocab);
    let prompts: Vec<Vec<u32>> = (0..3u32)
        .map(|i| {
            let mut p = prefix.clone();
            p.extend_from_slice(&[
                (i * 5 + 2) % cfg.vocab as u32,
                (i * 11 + 7) % cfg.vocab as u32,
            ]);
            p
        })
        .collect();
    let n_new = 6;

    let mut engine = Engine::new(m.clone());
    let expected: Vec<Vec<u32>> = prompts
        .iter()
        .map(|p| {
            engine
                .generate(&GenRequest::greedy(p, n_new), &ctx)
                .unwrap()
                .tokens
        })
        .collect();

    let mut sched = Scheduler::new(m, SchedulerConfig::default());
    let ids: Vec<_> = prompts
        .iter()
        .map(|p| sched.submit(SubmitRequest::greedy(p, n_new)).unwrap())
        .collect();
    let done = sched.run_to_completion(&ctx).unwrap();
    for (i, id) in ids.iter().enumerate() {
        let f = done.iter().find(|f| f.id == *id).unwrap();
        assert_eq!(f.tokens, expected[i], "shared-prefix request {i} diverged");
    }

    let stats = sched.kv_stats();
    assert!(
        stats.prefix_hits >= 2,
        "requests 2 and 3 must hit the cached prefix: {stats:?}"
    );
    assert!(
        stats.prefix_hit_positions >= 2 * (2 * PAGE_POSITIONS as u64 - 2),
        "each hit must cover the whole shared prefix: {stats:?}"
    );
    // Dense accounting: each of the 3 sequences spans 3 pages
    // (128 prompt + 6 decode positions) = 9 pages. Sharing the two
    // prefix pages must keep the arena strictly below that.
    assert!(
        stats.pages_allocated < 3 * 3,
        "sharing must beat dense 3x3-page accounting: {stats:?}"
    );
    assert!(
        stats.cow_forks >= 1,
        "partial-page hits must fork on the divergent write: {stats:?}"
    );
}

#[test]
fn repeated_prompt_is_served_by_cow_forking_the_tail_page() {
    // The second identical submit matches everything but the last prompt
    // token; its first store lands in the shared tail page and must fork
    // it (copy-on-write) rather than corrupt the cached prefix — proven
    // by a third, again bit-exact, submit.
    let ctx = ctx();
    let cfg = paged_cfg(KvPrecision::F32);
    let m = model(&cfg, 2, 55);
    let prompt = prompt_of(10, 4, cfg.vocab);
    let n_new = 5;

    let mut engine = Engine::new(m.clone());
    let expected = engine
        .generate(&GenRequest::greedy(&prompt, n_new), &ctx)
        .unwrap()
        .tokens;

    let mut sched = Scheduler::new(m, SchedulerConfig::default());
    for round in 0..3 {
        let id = sched.submit(SubmitRequest::greedy(&prompt, n_new)).unwrap();
        let done = sched.run_to_completion(&ctx).unwrap();
        let f = done.iter().find(|f| f.id == id).unwrap();
        assert_eq!(f.tokens, expected, "round {round} diverged");
    }
    let stats = sched.kv_stats();
    assert!(stats.prefix_hits >= 2, "rounds 2 and 3 must hit: {stats:?}");
    assert!(
        stats.cow_forks >= 2,
        "each hit writes into the shared tail page and must fork it: {stats:?}"
    );
}

#[test]
fn cache_prompt_opt_out_keeps_the_radix_index_empty() {
    let ctx = ctx();
    let cfg = paged_cfg(KvPrecision::F32);
    let m = model(&cfg, 2, 14);
    let prompt = prompt_of(12, 9, cfg.vocab);

    let mut engine = Engine::new(m.clone());
    let expected = engine
        .generate(&GenRequest::greedy(&prompt, 4), &ctx)
        .unwrap()
        .tokens;

    let mut sched = Scheduler::new(m, SchedulerConfig::default());
    for _ in 0..2 {
        let id = sched
            .submit(SubmitRequest::greedy(&prompt, 4).with_cache_prompt(false))
            .unwrap();
        let done = sched.run_to_completion(&ctx).unwrap();
        let f = done.iter().find(|f| f.id == id).unwrap();
        assert_eq!(f.tokens, expected, "opted-out request diverged");
    }
    let stats = sched.kv_stats();
    assert_eq!(stats.prefix_hits, 0, "{stats:?}");
    assert_eq!(stats.radix_nodes, 0, "{stats:?}");
    assert_eq!(stats.cow_forks, 0, "{stats:?}");
}

#[test]
fn page_budget_evicts_cold_prefixes_and_keeps_serving_bit_exact() {
    // Six distinct cached prompts through a 4-page budget: the retired
    // prefixes pile up in the radix index until allocation pressure evicts
    // the LRU ones. Every request must still serve bit-exact tokens, and
    // the arena must respect the budget.
    let ctx = ctx();
    let cfg = paged_cfg(KvPrecision::F32);
    let m = model(&cfg, 2, 33);
    let mut sched = Scheduler::new(
        m.clone(),
        SchedulerConfig {
            kv_page_budget: 4,
            ..SchedulerConfig::default()
        },
    );
    let mut engine = Engine::new(m);

    for salt in 0..6u32 {
        let prompt = prompt_of(8, salt + 20, cfg.vocab);
        let expected = engine
            .generate(&GenRequest::greedy(&prompt, 4), &ctx)
            .unwrap()
            .tokens;
        let id = sched.submit(SubmitRequest::greedy(&prompt, 4)).unwrap();
        let done = sched.run_to_completion(&ctx).unwrap();
        let f = done.iter().find(|f| f.id == id).unwrap();
        assert_eq!(f.tokens, expected, "prompt {salt} diverged under budget");
    }
    let stats = sched.kv_stats();
    assert!(
        stats.evictions >= 1,
        "budget pressure must evict: {stats:?}"
    );
    assert!(
        stats.pages_allocated <= 4,
        "arena must respect the budget: {stats:?}"
    );
}

#[test]
fn over_budget_request_retires_with_an_error_not_a_crash() {
    // A prompt needing two pages against a 1-page budget: the sequence
    // must retire with an out-of-pages error through the quarantine path,
    // and the scheduler must keep serving fitting requests afterwards.
    let ctx = ctx();
    let cfg = paged_cfg(KvPrecision::F32);
    let m = model(&cfg, 2, 62);
    let mut sched = Scheduler::new(
        m.clone(),
        SchedulerConfig {
            kv_page_budget: 1,
            ..SchedulerConfig::default()
        },
    );

    let big = prompt_of(PAGE_POSITIONS + 8, 1, cfg.vocab);
    let id = sched.submit(SubmitRequest::greedy(&big, 4)).unwrap();
    let done = sched.run_to_completion(&ctx).unwrap();
    let f = done.iter().find(|f| f.id == id).unwrap();
    assert!(
        f.reason.is_error(),
        "2-page prompt under a 1-page budget must error: {:?}",
        f.reason
    );

    // Recovery: a fitting request still serves. It opts out of caching —
    // under a 1-page budget there is no headroom for the copy-on-write
    // fork a published prefix would force at the first decode write.
    let small = prompt_of(6, 2, cfg.vocab);
    let expected = Engine::new(m)
        .generate(&GenRequest::greedy(&small, 4), &ctx)
        .unwrap()
        .tokens;
    let id = sched
        .submit(SubmitRequest::greedy(&small, 4).with_cache_prompt(false))
        .unwrap();
    let done = sched.run_to_completion(&ctx).unwrap();
    let f = done.iter().find(|f| f.id == id).unwrap();
    assert_eq!(f.tokens, expected, "post-error serving must recover");
}
