//! Quantized-KV attention acceptance tests: i8-KV accuracy bounds (per-
//! layer attention NMSE and end-to-end decode agreement), head-major f32
//! equivalence against the seed's strided two-pass formulation, GQA
//! `kv_groups` edge cases, KV growth-boundary behaviour, and long-seq
//! mixed prefill/decode batches.
//!
//! Thread count comes from `TMAC_TEST_THREADS` (default 2), matching
//! `tests/batch.rs`, so CI can matrix pool sizes over the per-head fan-out.

use tmac::core::ExecCtx;
use tmac::llm::kv::KV_GROW_POSITIONS;
use tmac::llm::{
    BackendKind, BatchScratch, Engine, GenRequest, KvCache, KvPrecision, Model, ModelConfig,
    Scratch, SubmitRequest, WeightQuant,
};
use tmac::simd::f32ops;

fn test_threads() -> usize {
    std::env::var("TMAC_TEST_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(2)
}

fn ctx() -> ExecCtx {
    ExecCtx::new(test_threads())
}

fn model_with(cfg: &ModelConfig, kind: BackendKind) -> Model {
    Model::synthetic(cfg, WeightQuant::Rtn(4), kind, 42).unwrap()
}

/// A tiny config with a longer sequence budget (crosses the KV growth
/// chunk) and GQA grouping.
fn long_cfg() -> ModelConfig {
    let mut cfg = ModelConfig::tiny();
    cfg.seq_max = KV_GROW_POSITIONS + 32;
    cfg
}

/// Decodes `steps` greedy tokens from a fixed first token, returning every
/// step's logits.
fn decode_logits(m: &Model, cache: &mut KvCache, steps: usize, ctx: &ExecCtx) -> Vec<Vec<f32>> {
    let mut s = Scratch::new(&m.cfg);
    let mut out = Vec::with_capacity(steps);
    let mut token = 1u32;
    for pos in 0..steps {
        m.forward(token, pos, cache, &mut s, ctx).unwrap();
        out.push(s.logits.clone());
        token = (tmac::llm::ops::argmax(&s.logits) as u32) % m.cfg.vocab as u32;
    }
    out
}

/// The f32 path over the head-major cache must be bit-identical to the
/// seed's formulation — here reproduced as a from-scratch strided two-pass
/// attention — end to end through full forwards.
#[test]
#[allow(clippy::needless_range_loop)] // index loops mirror the seed's exact formulation
fn f32_forward_bit_exact_vs_seed_style_reference() {
    let cfg = ModelConfig::tiny();
    let m = model_with(&cfg, BackendKind::F32);
    let ctx = ctx();

    // Reference: replicate the forward with attention computed over an
    // explicitly strided [seq][kv_dim] copy of K/V (the seed layout).
    let (dim, hd, kvd) = (cfg.dim, cfg.head_dim(), cfg.kv_dim());
    let groups = cfg.n_heads / cfg.n_kv_heads;
    let steps = 12;

    // Run the real model, capturing per-step logits.
    let mut cache = KvCache::new(&cfg);
    let real = decode_logits(&m, &mut cache, steps, &ctx);

    // Reference run: identical projections (the same Linear weights), but
    // K/V kept in a [layer][seq][kv_dim] f32 buffer and attention done the
    // seed way with one shared score buffer.
    let mut k_buf = vec![0f32; cfg.n_layers * cfg.seq_max * kvd];
    let mut v_buf = vec![0f32; cfg.n_layers * cfg.seq_max * kvd];
    let mut x = vec![0f32; dim];
    let mut xn = vec![0f32; dim];
    let mut q = vec![0f32; dim];
    let mut k = vec![0f32; kvd];
    let mut v = vec![0f32; kvd];
    let mut att = vec![0f32; dim];
    let mut proj = vec![0f32; dim];
    let mut gate = vec![0f32; cfg.ffn_dim];
    let mut up = vec![0f32; cfg.ffn_dim];
    let mut hidden = vec![0f32; cfg.ffn_dim];
    let mut ffn = vec![0f32; dim];
    let mut scores = vec![0f32; cfg.seq_max];
    let mut logits = vec![0f32; cfg.vocab];
    let mut token = 1u32;
    let scale = 1.0 / (hd as f32).sqrt();
    for (pos, want) in real.iter().enumerate() {
        x.copy_from_slice(&m.embed[token as usize * dim..(token as usize + 1) * dim]);
        for (l, lw) in m.layers.iter().enumerate() {
            tmac::llm::ops::rmsnorm(&mut xn, &x, &lw.rms_attn, 1e-5);
            ctx.next_activation();
            lw.wq.forward(&xn, &mut q, &ctx).unwrap();
            lw.wk.forward(&xn, &mut k, &ctx).unwrap();
            lw.wv.forward(&xn, &mut v, &ctx).unwrap();
            tmac::llm::ops::rope(&mut q, hd, pos, cfg.rope_theta);
            tmac::llm::ops::rope(&mut k, hd, pos, cfg.rope_theta);
            let o = (l * cfg.seq_max + pos) * kvd;
            k_buf[o..o + kvd].copy_from_slice(&k);
            v_buf[o..o + kvd].copy_from_slice(&v);
            for h in 0..cfg.n_heads {
                let kvh = h / groups;
                let qh = &q[h * hd..(h + 1) * hd];
                for t in 0..=pos {
                    let ko = (l * cfg.seq_max + t) * kvd + kvh * hd;
                    scores[t] = f32ops::dot(qh, &k_buf[ko..ko + hd]) * scale;
                }
                tmac::llm::ops::softmax(&mut scores[..=pos]);
                let out = &mut att[h * hd..(h + 1) * hd];
                out.fill(0.0);
                for t in 0..=pos {
                    let vo = (l * cfg.seq_max + t) * kvd + kvh * hd;
                    f32ops::axpy(out, scores[t], &v_buf[vo..vo + hd]);
                }
            }
            ctx.next_activation();
            lw.wo.forward(&att, &mut proj, &ctx).unwrap();
            tmac::llm::ops::add_assign(&mut x, &proj);
            tmac::llm::ops::rmsnorm(&mut xn, &x, &lw.rms_ffn, 1e-5);
            ctx.next_activation();
            lw.w1.forward(&xn, &mut gate, &ctx).unwrap();
            lw.w3.forward(&xn, &mut up, &ctx).unwrap();
            tmac::llm::ops::swiglu(&mut hidden, &gate, &up);
            ctx.next_activation();
            lw.w2.forward(&hidden, &mut ffn, &ctx).unwrap();
            tmac::llm::ops::add_assign(&mut x, &ffn);
        }
        tmac::llm::ops::rmsnorm(&mut xn, &x, &m.rms_final, 1e-5);
        ctx.next_activation();
        m.head.forward(&xn, &mut logits, &ctx).unwrap();
        assert_eq!(&logits, want, "pos {pos}: head-major f32 diverged");
        token = (tmac::llm::ops::argmax(&logits) as u32) % cfg.vocab as u32;
    }
}

/// Per-layer i8 attention accuracy: the NMSE of an i8-KV decode's logits
/// against the f32-KV decode stays within quantization-error bounds at
/// every step, on every backend family.
#[test]
fn i8_kv_logits_nmse_bounded() {
    let cfg = ModelConfig::tiny();
    let ctx = ctx();
    for kind in [
        BackendKind::F32,
        BackendKind::Tmac(tmac::core::KernelOpts::tmac()),
    ] {
        let m = model_with(&cfg, kind);
        let steps = 24;
        let mut fc = KvCache::with_precision(&cfg, KvPrecision::F32);
        let mut ic = KvCache::with_precision(&cfg, KvPrecision::I8);
        let f_logits = decode_logits(&m, &mut fc, steps, &ctx);
        let i_logits = decode_logits(&m, &mut ic, steps, &ctx);
        for (pos, (f, i)) in f_logits.iter().zip(&i_logits).enumerate() {
            let nmse = f32ops::nmse(i, f);
            assert!(nmse < 2e-3, "{kind:?} pos {pos}: logits NMSE {nmse}");
        }
    }
}

/// End-to-end greedy agreement over >= 64 tokens: decoding the same stream
/// teacher-forced from the f32 path, the i8 path's greedy picks agree at
/// (nearly) every step.
#[test]
fn i8_kv_greedy_decode_agreement_64_tokens() {
    let mut cfg = long_cfg();
    cfg.seq_max = cfg.seq_max.max(72);
    let m = model_with(&cfg, BackendKind::F32);
    let ctx = ctx();
    let steps = 64;

    let mut fc = KvCache::with_precision(&cfg, KvPrecision::F32);
    let mut ic = KvCache::with_precision(&cfg, KvPrecision::I8);
    let mut fs = Scratch::new(&cfg);
    let mut is = Scratch::new(&cfg);
    let mut token = 3u32;
    let mut agree = 0;
    for pos in 0..steps {
        // Teacher-forced: both paths consume the f32 stream's token, so one
        // near-tie cannot cascade into unrelated divergence downstream.
        m.forward(token, pos, &mut fc, &mut fs, &ctx).unwrap();
        m.forward(token, pos, &mut ic, &mut is, &ctx).unwrap();
        let ft = tmac::llm::ops::argmax(&fs.logits);
        let it = tmac::llm::ops::argmax(&is.logits);
        if ft == it {
            agree += 1;
        }
        token = (ft as u32) % cfg.vocab as u32;
    }
    assert!(
        agree * 10 >= steps * 9,
        "i8 KV agreed on only {agree}/{steps} greedy picks"
    );
}

/// GQA edge cases: MQA (1 kv head), full multi-head (kv == heads), and the
/// tiny default (2 groups) all decode finitely on both precisions, and the
/// i8 path tracks f32 on each.
#[test]
fn gqa_group_edge_cases() {
    let ctx = ctx();
    for n_kv_heads in [1usize, 2, 4] {
        let mut cfg = ModelConfig::tiny();
        cfg.n_kv_heads = n_kv_heads;
        cfg.validate().unwrap();
        let m = model_with(&cfg, BackendKind::F32);
        let mut fc = KvCache::with_precision(&cfg, KvPrecision::F32);
        let mut ic = KvCache::with_precision(&cfg, KvPrecision::I8);
        let f = decode_logits(&m, &mut fc, 8, &ctx);
        let i = decode_logits(&m, &mut ic, 8, &ctx);
        for (pos, (fl, il)) in f.iter().zip(&i).enumerate() {
            assert!(
                fl.iter().all(|x| x.is_finite()),
                "kv={n_kv_heads} pos={pos}"
            );
            let nmse = f32ops::nmse(il, fl);
            assert!(nmse < 2e-3, "kv={n_kv_heads} pos={pos} NMSE {nmse}");
        }
    }
}

/// Decoding across the KV growth-chunk boundary must not perturb results:
/// a cache grown incrementally equals a fresh decode, bit-for-bit on the
/// f32 path, on both sides of the boundary.
#[test]
fn decode_across_growth_boundary_is_stable() {
    let cfg = long_cfg();
    let m = model_with(&cfg, BackendKind::F32);
    let ctx = ctx();
    let steps = KV_GROW_POSITIONS + 8; // crosses the first growth boundary
    for prec in [KvPrecision::F32, KvPrecision::I8] {
        let mut a = KvCache::with_precision(&cfg, prec);
        let la = decode_logits(&m, &mut a, steps, &ctx);
        assert!(a.seq_capacity() > KV_GROW_POSITIONS, "{prec:?}: no growth");
        // Same decode on a fresh cache must match exactly (the growth
        // re-lay preserved every stored row).
        let mut b = KvCache::with_precision(&cfg, prec);
        let lb = decode_logits(&m, &mut b, steps, &ctx);
        for (pos, (x, y)) in la.iter().zip(&lb).enumerate() {
            assert_eq!(x, y, "{prec:?} pos {pos}");
        }
    }
}

/// Long-seq mixed batches: one row decoding deep into its context while
/// other rows prefill a second slot, across the growth boundary, equals
/// the same work done sequentially (bit-exact on f32, exact-match greedy
/// path on i8 since rows are independent per cache).
#[test]
fn mixed_prefill_decode_rows_match_sequential_at_depth() {
    let cfg = long_cfg();
    let ctx = ctx();
    for prec in [KvPrecision::F32, KvPrecision::I8] {
        let m = Model::synthetic(
            &cfg.clone().with_kv(prec),
            WeightQuant::Rtn(4),
            BackendKind::F32,
            42,
        )
        .unwrap();
        let deep = KV_GROW_POSITIONS + 2; // decode row's position (across growth)

        // Sequential reference: stream A decodes to `deep`, stream B
        // prefills 3 tokens, all via single forwards.
        let mut ca = KvCache::new(&m.cfg);
        let la = decode_logits(&m, &mut ca, deep, &ctx); // fills positions 0..deep
        let mut cb = KvCache::new(&m.cfg);
        let mut sb = Scratch::new(&m.cfg);
        let b_tokens = [5u32, 6, 7];
        let mut lb = Vec::new();
        for (pos, &t) in b_tokens.iter().enumerate() {
            m.forward(t, pos, &mut cb, &mut sb, &ctx).unwrap();
            lb.push(sb.logits.clone());
        }

        // Batched: rebuild stream A's sequence (seq 0 of a pooled cache) to
        // depth `deep - 1`, then one forward_batch with A's deep decode row
        // + B's 3 prefill rows into seq 1.
        let mut caches = KvCache::multi(&m.cfg, 2);
        let _ = decode_logits(&m, &mut caches, deep - 1, &ctx);
        // Recompute the token stream A fed at `deep - 1`.
        let a_token = (tmac::llm::ops::argmax(&la[deep - 2]) as u32) % m.cfg.vocab as u32;
        let mut scratch = BatchScratch::new(&m.cfg, 4);
        let tokens = [a_token, b_tokens[0], b_tokens[1], b_tokens[2]];
        let positions = [deep - 1, 0, 1, 2];
        let slots = [0usize, 1, 1, 1];
        m.forward_batch(&tokens, &positions, &slots, &mut caches, &mut scratch, &ctx)
            .unwrap();
        assert_eq!(
            scratch.logits_row(0),
            &la[deep - 1][..],
            "{prec:?}: deep decode row diverged from sequential"
        );
        assert_eq!(
            scratch.logits_row(3),
            &lb[2][..],
            "{prec:?}: prefill row diverged from sequential"
        );
        assert_eq!(caches.seq_len(0), deep);
        assert_eq!(caches.seq_len(1), 3);
    }
}

/// The engine's generate path is identical across KV precisions in shape
/// and deterministic per precision; the scheduler serves i8-KV sequences
/// to the same tokens as single-stream generate on the same model.
#[test]
fn scheduler_serves_i8_kv_identically_to_generate() {
    use tmac::llm::batch::{Scheduler, SchedulerConfig};
    let cfg = ModelConfig::tiny().with_kv(KvPrecision::I8);
    let kind = BackendKind::Tmac(tmac::core::KernelOpts::tmac());
    let ctx = ctx();
    let prompts: [&[u32]; 3] = [&[1, 2, 3], &[7], &[4, 5, 6, 8, 9]];
    let n_new = 6;

    let mut engine = Engine::new(Model::synthetic(&cfg, WeightQuant::Rtn(2), kind, 11).unwrap());
    let singles: Vec<Vec<u32>> = prompts
        .iter()
        .map(|p| {
            engine
                .generate(&GenRequest::greedy(p, n_new), &ctx)
                .unwrap()
                .tokens
        })
        .collect();

    let mut sched = Scheduler::new(
        Model::synthetic(&cfg, WeightQuant::Rtn(2), kind, 11).unwrap(),
        SchedulerConfig::default(),
    );
    let ids: Vec<_> = prompts
        .iter()
        .map(|p| sched.submit(SubmitRequest::greedy(p, n_new)).unwrap())
        .collect();
    let done = sched.run_to_completion(&ctx).unwrap();
    for (i, id) in ids.iter().enumerate() {
        let f = done.iter().find(|f| f.id == *id).unwrap();
        assert_eq!(f.tokens, singles[i], "i8-KV sequence {i} diverged");
    }
}
