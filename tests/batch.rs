//! Batched-serving equivalence tests: `Model::forward_batch` with `B`
//! sequences must be *bit-exact* against `B` independent `Model::forward`
//! runs with the same tokens and positions, across bit-widths, backends,
//! batch sizes that don't divide the mpGEMM row block, and thread counts.
//!
//! Thread count comes from `TMAC_TEST_THREADS` (default 2) so CI can run
//! the same tests under a 1-thread and an N-thread pool to catch
//! pool-size-dependent bugs in the batched dispatch.

use tmac::core::ExecCtx;
use tmac::llm::batch::{Scheduler, SchedulerConfig, SubmitRequest};
use tmac::llm::{
    BackendKind, BatchScratch, Engine, GenRequest, KvCache, Model, ModelConfig, Scratch,
    WeightQuant,
};

/// Thread-pool size under test (CI matrixes this between 1 and N).
fn test_threads() -> usize {
    std::env::var("TMAC_TEST_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(2)
}

fn ctx() -> ExecCtx {
    ExecCtx::new(test_threads())
}

fn model(quant: WeightQuant, kind: BackendKind, seed: u64) -> Model {
    Model::synthetic(&ModelConfig::tiny(), quant, kind, seed).unwrap()
}

/// Runs `b` independent single-token streams for `steps` positions, then
/// one batched run over per-sequence caches, and asserts bit-equality of
/// every row's logits at every step.
#[allow(clippy::needless_range_loop)] // Index loops mirror the (pos, row) batch structure.
fn assert_batch_equals_singles(m: &Model, b: usize, steps: usize, ctx: &ExecCtx) {
    let tokens_at = |step: usize, r: usize| ((r * 13 + step * 7 + 1) % m.cfg.vocab) as u32;

    // Reference: B independent forward() streams.
    let mut single_logits: Vec<Vec<Vec<f32>>> = Vec::with_capacity(b);
    for r in 0..b {
        let mut cache = KvCache::new(&m.cfg);
        let mut s = Scratch::new(&m.cfg);
        let mut per_step = Vec::with_capacity(steps);
        for pos in 0..steps {
            m.forward(tokens_at(pos, r), pos, &mut cache, &mut s, ctx)
                .unwrap();
            per_step.push(s.logits.clone());
        }
        single_logits.push(per_step);
    }

    // Batched: one forward_batch per step over all B rows (one pooled
    // paged cache, one sequence per row).
    let mut cache = KvCache::multi(&m.cfg, b);
    let mut scratch = BatchScratch::new(&m.cfg, b);
    let slots: Vec<usize> = (0..b).collect();
    for pos in 0..steps {
        let tokens: Vec<u32> = (0..b).map(|r| tokens_at(pos, r)).collect();
        let positions = vec![pos; b];
        m.forward_batch(&tokens, &positions, &slots, &mut cache, &mut scratch, ctx)
            .unwrap();
        for r in 0..b {
            assert_eq!(
                scratch.logits_row(r),
                &single_logits[r][pos][..],
                "row {r} step {pos} diverged from the single-stream forward"
            );
        }
    }
}

#[test]
fn forward_batch_is_bit_exact_across_bits() {
    // The acceptance property: every bit-width, a batch size (5) that is
    // neither a multiple of the mpGEMM row block (8) nor of any tile.
    let ctx = ctx();
    for bits in 1..=4u8 {
        let m = model(
            WeightQuant::Rtn(bits),
            BackendKind::Tmac(tmac::core::KernelOpts::tmac()),
            31 + bits as u64,
        );
        assert_batch_equals_singles(&m, 5, 3, &ctx);
    }
}

#[test]
fn forward_batch_is_bit_exact_beyond_the_row_block() {
    // B = 11 spans two mpGEMM row blocks (n_block = 8) unevenly.
    let ctx = ctx();
    let m = model(
        WeightQuant::Rtn(2),
        BackendKind::Tmac(tmac::core::KernelOpts::tmac()),
        77,
    );
    assert_batch_equals_singles(&m, 11, 2, &ctx);
}

#[test]
fn forward_batch_is_bit_exact_on_every_backend() {
    let ctx = ctx();
    for kind in [
        BackendKind::F32,
        BackendKind::Dequant,
        BackendKind::Tmac(tmac::core::KernelOpts::tmac()),
        BackendKind::Tmac(tmac::core::KernelOpts::tmac_fast_aggregation()),
        BackendKind::Tmac(tmac::core::KernelOpts::tmac_mirror()),
    ] {
        let m = model(WeightQuant::Rtn(3), kind, 5);
        assert_batch_equals_singles(&m, 3, 2, &ctx);
    }
}

#[test]
fn forward_batch_is_bit_exact_across_register_blockings() {
    // The multi-row register-blocked kernel must not change a bit whatever
    // the row_block / kg_panel tuning: per-row sweep (row_block 1), an odd
    // register block, the full 8-row block, and a tiny forced K-panel that
    // splits every sweep.
    let ctx = ctx();
    for (rb, kp) in [(1usize, 0usize), (3, 8), (8, 0), (4, 16)] {
        let mut opts = tmac::core::KernelOpts::tmac();
        opts.row_block = rb;
        opts.kg_panel = kp;
        let m = model(WeightQuant::Rtn(2), BackendKind::Tmac(opts), 31);
        assert_batch_equals_singles(&m, 5, 2, &ctx);
    }
}

#[test]
fn forward_batch_is_bit_exact_for_bitnet_ternary() {
    let ctx = ctx();
    let m = model(
        WeightQuant::BitnetTernary,
        BackendKind::Tmac(tmac::core::KernelOpts::tmac()),
        13,
    );
    assert_batch_equals_singles(&m, 5, 2, &ctx);
}

#[test]
fn batched_prefill_equals_sequential_prefill() {
    // A whole prompt through forward_batch (one cache, successive
    // positions) against token-at-a-time forwards: same final logits, same
    // KV contents as far as subsequent decoding can observe.
    let ctx = ctx();
    let m = model(
        WeightQuant::Rtn(2),
        BackendKind::Tmac(tmac::core::KernelOpts::tmac()),
        91,
    );
    let prompt: Vec<u32> = (0..19).map(|i| (i * 5 + 2) % m.cfg.vocab as u32).collect();

    let mut engine = Engine::new(m.clone());
    let batched = engine.prefill(&prompt, &ctx).unwrap();
    let after = engine.step(
        batched.len() as u32 % m.cfg.vocab as u32,
        prompt.len(),
        &ctx,
    );

    let mut cache = KvCache::new(&m.cfg);
    let mut s = Scratch::new(&m.cfg);
    for (pos, &t) in prompt.iter().enumerate() {
        m.forward(t, pos, &mut cache, &mut s, &ctx).unwrap();
    }
    assert_eq!(batched, s.logits, "prefill logits diverged");
    // Decoding continues identically from the batched-prefill cache.
    m.forward(
        batched.len() as u32 % m.cfg.vocab as u32,
        prompt.len(),
        &mut cache,
        &mut s,
        &ctx,
    )
    .unwrap();
    assert_eq!(after.unwrap(), s.logits, "post-prefill decode diverged");
}

#[test]
fn scheduler_serves_bit_identical_sequences_at_any_batch_size() {
    // The end-to-end serving property: whatever the batching schedule,
    // every request gets the tokens a dedicated single-stream engine would
    // have produced.
    let ctx = ctx();
    let kind = BackendKind::Tmac(tmac::core::KernelOpts::tmac());
    let prompts: Vec<Vec<u32>> = (0..6)
        .map(|i| {
            (0..(i % 3 + 1))
                .map(|j| (i * 7 + j * 3 + 1) as u32)
                .collect()
        })
        .collect();
    let n_new = 5;

    let mut engine = Engine::new(model(WeightQuant::Rtn(2), kind, 23));
    let singles: Vec<Vec<u32>> = prompts
        .iter()
        .map(|p| {
            engine
                .generate(&GenRequest::greedy(p, n_new), &ctx)
                .unwrap()
                .tokens
        })
        .collect();

    for max_batch in [1, 3, 16] {
        let mut sched = Scheduler::new(
            model(WeightQuant::Rtn(2), kind, 23),
            SchedulerConfig {
                max_batch,
                prefill_chunk: 4,
                ..SchedulerConfig::default()
            },
        );
        let ids: Vec<_> = prompts
            .iter()
            .map(|p| sched.submit(SubmitRequest::greedy(p, n_new)).unwrap())
            .collect();
        let done = sched.run_to_completion(&ctx).unwrap();
        for (i, id) in ids.iter().enumerate() {
            let f = done.iter().find(|f| f.id == *id).unwrap();
            assert_eq!(
                f.tokens, singles[i],
                "max_batch={max_batch} sequence {i} diverged"
            );
        }
    }
}
