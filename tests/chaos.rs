//! Failpoint-driven fault-injection e2e tests (`--features failpoints`).
//!
//! These tests arm *real* failpoint sites (`scheduler/forward`,
//! `bridge/loop`, `io/*`), and the registry is process-global — so they
//! live in their own test binary, serialized by [`fp_lock`], instead of
//! riding in `tests/serve_http.rs` where Rust's parallel test runner
//! would let one test's triggers fire inside another. Without the
//! `failpoints` feature this whole binary compiles to nothing.

#![cfg(feature = "failpoints")]

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Mutex, MutexGuard};
use std::time::{Duration, Instant};
use tmac::core::failpoint;
use tmac::core::ExecCtx;
use tmac::io::{IoError, LoadMode, Mapping, TmacContainer};
use tmac::llm::{
    BackendKind, Model, ModelConfig, Scheduler, SchedulerConfig, SubmitRequest, WeightQuant,
};
use tmac::serve::{ConnMode, Json, Metrics, ServerConfig, ServerHandle, SupervisorOpts};

/// Serializes tests in this binary and clears the registry on both entry
/// and exit, so a panicking test cannot leak armed sites into the next.
fn fp_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    let g = LOCK.lock().unwrap_or_else(|p| p.into_inner());
    failpoint::clear();
    g
}

/// Clears armed failpoints when a test body finishes or panics.
struct Disarm;
impl Drop for Disarm {
    fn drop(&mut self) {
        failpoint::clear();
    }
}

const SEED: u64 = 42;

fn tiny_model() -> Model {
    Model::synthetic(
        &ModelConfig::tiny(),
        WeightQuant::Rtn(2),
        BackendKind::Tmac(tmac::core::KernelOpts::tmac()),
        SEED,
    )
    .unwrap()
}

fn start_server(mode: ConnMode, supervisor: SupervisorOpts) -> ServerHandle {
    let sched = Scheduler::new(
        tiny_model(),
        SchedulerConfig {
            max_batch: 4,
            max_pending: 16,
            ..SchedulerConfig::default()
        },
    );
    tmac::serve::start(
        sched,
        ExecCtx::new(1),
        ServerConfig {
            mode,
            supervisor,
            ..ServerConfig::default()
        },
    )
    .unwrap()
}

/// Scheduler-direct reference output. Must run with no scheduler sites
/// armed — callers compute references *before* configuring failpoints.
fn direct_tokens(prompt: &[u32], max_new: usize) -> Vec<u32> {
    let ctx = ExecCtx::new(1);
    let mut sched = Scheduler::new(tiny_model(), SchedulerConfig::default());
    let id = sched
        .submit(SubmitRequest::greedy(prompt, max_new))
        .unwrap();
    let done = sched.run_to_completion(&ctx).unwrap();
    done.into_iter().find(|f| f.id == id).unwrap().tokens
}

fn prompt_json(prompt: &[u32], max_tokens: usize, stream: bool) -> String {
    let ids: Vec<String> = prompt.iter().map(|t| t.to_string()).collect();
    format!(
        "{{\"prompt\":[{}],\"max_tokens\":{max_tokens},\"stream\":{stream}}}",
        ids.join(",")
    )
}

fn raw_request(addr: SocketAddr, method: &str, path: &str, body: &str) -> String {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let req = format!(
        "{method} {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(req.as_bytes()).unwrap();
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).unwrap();
    String::from_utf8_lossy(&raw).into_owned()
}

fn status_of(response: &str) -> u16 {
    response.split_whitespace().nth(1).unwrap().parse().unwrap()
}

fn healthz(addr: SocketAddr) -> (u16, String) {
    let text = raw_request(addr, "GET", "/healthz", "");
    let status = status_of(&text);
    let body = text
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

/// One client's terminal outcome: the emitted tokens plus whether the
/// request ended in a fault (HTTP 500 or an SSE `finish_reason: error`).
struct ClientOutcome {
    tokens: Vec<u32>,
    errored: bool,
}

fn run_client(addr: SocketAddr, prompt: &[u32], max_new: usize, stream: bool) -> ClientOutcome {
    let text = raw_request(
        addr,
        "POST",
        "/v1/completions",
        &prompt_json(prompt, max_new, stream),
    );
    let status = status_of(&text);
    if stream {
        assert_eq!(status, 200, "SSE must open with 200: {text}");
        let mut tokens = Vec::new();
        let mut reason = String::new();
        for line in text.lines() {
            let Some(payload) = line.strip_prefix("data: ") else {
                continue;
            };
            if payload == "[DONE]" {
                break;
            }
            let doc = Json::parse(payload).expect("valid SSE chunk");
            let choice = &doc.get("choices").unwrap().as_arr().unwrap()[0];
            if let Some(t) = choice.get("token_id") {
                tokens.push(t.as_u64().unwrap() as u32);
            }
            if let Some(r) = choice.get("finish_reason") {
                reason = r.as_str().unwrap().to_string();
            }
        }
        ClientOutcome {
            tokens,
            errored: reason == "error",
        }
    } else if status == 200 {
        let (_, body) = text.split_once("\r\n\r\n").unwrap();
        let doc = Json::parse(body).expect("valid completion JSON");
        let tokens = doc.get("choices").unwrap().as_arr().unwrap()[0]
            .get("token_ids")
            .unwrap()
            .as_arr()
            .unwrap()
            .iter()
            .map(|t| t.as_u64().unwrap() as u32)
            .collect();
        ClientOutcome {
            tokens,
            errored: false,
        }
    } else {
        assert_eq!(status, 500, "non-victim failures must not happen: {text}");
        ClientOutcome {
            tokens: Vec::new(),
            errored: true,
        }
    }
}

/// Polls until the serving gauges all read zero.
fn wait_quiesce(metrics: &Metrics) -> bool {
    let deadline = Instant::now() + Duration::from_secs(10);
    while Instant::now() < deadline {
        if metrics.queue_depth.get() == 0
            && metrics.active_seqs.get() == 0
            && metrics.kv_slots_used.get() == 0
            && metrics.connections.get() == 0
        {
            return true;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    false
}

fn both_modes() -> Vec<ConnMode> {
    if cfg!(target_os = "linux") {
        vec![ConnMode::Epoll, ConnMode::Threads]
    } else {
        vec![ConnMode::Threads]
    }
}

#[test]
fn forward_panic_mid_stream_quarantines_only_the_victim() {
    let _g = fp_lock();
    let _d = Disarm;
    // Four concurrent requests (2 SSE, 2 plain). `n6x2` makes decode
    // forward #6 panic the whole batch and #7 panic the first per-row
    // probe: exactly one sequence is quarantined, the rest are exonerated
    // and must finish bit-exact.
    let cases: Vec<(Vec<u32>, usize)> = vec![
        (vec![1, 2, 3], 8),
        (vec![9, 4], 8),
        (vec![4, 5, 6], 8),
        (vec![11, 3, 8], 8),
    ];
    let expected: Vec<Vec<u32>> = cases.iter().map(|(p, n)| direct_tokens(p, *n)).collect();

    for mode in both_modes() {
        failpoint::clear();
        let server = start_server(mode, SupervisorOpts::default());
        let addr = server.addr();
        let metrics = server.metrics();
        failpoint::configure("scheduler/forward=panic:n6x2", SEED).unwrap();

        let clients: Vec<_> = cases
            .iter()
            .cloned()
            .enumerate()
            .map(|(i, (prompt, n))| {
                std::thread::spawn(move || run_client(addr, &prompt, n, i % 2 == 0))
            })
            .collect();
        let outcomes: Vec<ClientOutcome> = clients.into_iter().map(|c| c.join().unwrap()).collect();
        failpoint::clear();

        let victims = outcomes.iter().filter(|o| o.errored).count();
        assert_eq!(
            victims, 1,
            "exactly one request must be quarantined ({mode:?})"
        );
        for (i, o) in outcomes.iter().enumerate() {
            if !o.errored {
                assert_eq!(
                    o.tokens, expected[i],
                    "survivor {i} must be bit-exact ({mode:?})"
                );
            }
        }

        // The fault must not leak capacity, skew the counters, or mark the
        // server unhealthy.
        assert!(wait_quiesce(&metrics), "gauges must drain ({mode:?})");
        assert!(metrics.quarantined.get() >= 1, "{mode:?}");
        assert_eq!(healthz(addr).0, 200, "{mode:?}");
        let violations = metrics.consistency_violations();
        assert!(violations.is_empty(), "{mode:?}: {violations:?}");
        // With span recording compiled in, the quarantine leaves an
        // instant event in the trace — panics are observable after the
        // fact, not just counted.
        #[cfg(feature = "trace")]
        {
            let dump = tmac::trace::chrome_trace_json();
            assert!(
                dump.contains("\"name\":\"quarantine\""),
                "{mode:?}: no sched/quarantine instant in the trace dump"
            );
        }
        server.shutdown();
    }
}

#[test]
fn bridge_panic_restarts_the_loop_and_serving_recovers() {
    let _g = fp_lock();
    let _d = Disarm;
    let expected = direct_tokens(&[5, 6, 7], 6);
    // The loop's second iteration panics once (nothing in flight yet);
    // the supervisor must restart it and serving must carry on.
    failpoint::configure("bridge/loop=panic:n2", SEED).unwrap();
    let server = start_server(ConnMode::Threads, SupervisorOpts::default());
    let addr = server.addr();
    let metrics = server.metrics();

    let deadline = Instant::now() + Duration::from_secs(5);
    while metrics.step_loop_restarts.get() == 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(metrics.step_loop_restarts.get(), 1, "one restart expected");

    let out = run_client(addr, &[5, 6, 7], 6, false);
    assert!(!out.errored, "post-restart serving must work");
    assert_eq!(
        out.tokens, expected,
        "post-restart output must be bit-exact"
    );
    assert_eq!(healthz(addr).0, 200);
    server.shutdown();
}

#[test]
fn supervisor_exhaustion_degrades_healthz_and_rejects_work() {
    let _g = fp_lock();
    let _d = Disarm;
    // Every loop iteration panics: the supervisor burns its restart budget
    // and declares the bridge dead instead of spinning forever.
    failpoint::configure("bridge/loop=panic", SEED).unwrap();
    let server = start_server(
        ConnMode::Threads,
        SupervisorOpts {
            max_restarts: 2,
            backoff: Duration::from_millis(1),
            ..SupervisorOpts::default()
        },
    );
    let addr = server.addr();
    let metrics = server.metrics();

    let deadline = Instant::now() + Duration::from_secs(5);
    let mut dead = (0, String::new());
    while Instant::now() < deadline {
        dead = healthz(addr);
        if dead.0 == 503 {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(dead.0, 503, "healthz must degrade once the loop is dead");
    assert!(dead.1.contains("dead"), "body: {}", dead.1);
    assert!(metrics.step_loop_restarts.get() >= 2);

    let text = raw_request(
        addr,
        "POST",
        "/v1/completions",
        &prompt_json(&[1, 2], 4, false),
    );
    assert_eq!(status_of(&text), 503, "submits must fail fast: {text}");
    failpoint::clear();
    server.abort();
}

#[test]
fn kv_page_alloc_fault_errors_the_request_and_serving_recovers() {
    let _g = fp_lock();
    let _d = Disarm;
    let expected = direct_tokens(&[3, 1, 4], 6);

    let server = start_server(ConnMode::Threads, SupervisorOpts::default());
    let addr = server.addr();
    let metrics = server.metrics();

    // Every page allocation fails: the victim's prefill cannot attach a
    // page and must retire through the quarantine as an error, without
    // taking the server down.
    failpoint::configure("kv/page_alloc=error", SEED).unwrap();
    let out = run_client(addr, &[3, 1, 4], 6, false);
    assert!(out.errored, "prefill without pages must surface an error");
    failpoint::clear();

    // Disarmed, the same request must serve bit-exact — the fault leaked
    // no pages and left no partial radix state behind.
    let out = run_client(addr, &[3, 1, 4], 6, false);
    assert!(!out.errored, "post-fault serving must recover");
    assert_eq!(out.tokens, expected, "post-fault output must be bit-exact");

    // Snapshot consistency before the healthz probe: its own connection
    // would otherwise race the `connections` gauge back to non-zero.
    assert!(wait_quiesce(&metrics), "gauges must drain");
    assert!(metrics.quarantined.get() >= 1);
    let violations = metrics.consistency_violations();
    assert!(violations.is_empty(), "{violations:?}");
    assert_eq!(healthz(addr).0, 200);
    server.shutdown();
}

#[test]
fn kv_cow_fault_quarantines_the_cached_rerun_only() {
    let _g = fp_lock();
    let _d = Disarm;
    let ctx = ExecCtx::new(1);
    let prompt = [5u32, 6, 7];
    let expected = direct_tokens(&prompt, 4);

    let mut sched = Scheduler::new(tiny_model(), SchedulerConfig::default());
    // Round 1 (cold) publishes the prompt into the radix index.
    let id = sched.submit(SubmitRequest::greedy(&prompt, 4)).unwrap();
    let done = sched.run_to_completion(&ctx).unwrap();
    let first = done.into_iter().find(|f| f.id == id).unwrap();
    assert!(!first.reason.is_error());
    assert_eq!(first.tokens, expected);

    // Round 2 hits the cached prefix; its first divergent store forks the
    // shared tail page, which the failpoint turns into an error the
    // quarantine must contain.
    failpoint::configure("kv/cow=error", SEED).unwrap();
    let id = sched.submit(SubmitRequest::greedy(&prompt, 4)).unwrap();
    let done = sched.run_to_completion(&ctx).unwrap();
    let second = done.into_iter().find(|f| f.id == id).unwrap();
    assert!(
        second.reason.is_error(),
        "injected COW failure must error the victim: {:?}",
        second.reason
    );
    failpoint::clear();

    // Disarmed, the cached prefix is still intact and serves bit-exact.
    let id = sched.submit(SubmitRequest::greedy(&prompt, 4)).unwrap();
    let done = sched.run_to_completion(&ctx).unwrap();
    let third = done.into_iter().find(|f| f.id == id).unwrap();
    assert!(!third.reason.is_error());
    assert_eq!(third.tokens, expected, "cached rerun must be bit-exact");
    assert!(sched.kv_stats().prefix_hits >= 2);
}

#[test]
fn io_failpoints_surface_as_typed_errors() {
    let _g = fp_lock();
    let _d = Disarm;
    let dir = std::env::temp_dir().join(format!("tmac-chaos-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let bin = dir.join("blob.bin");
    std::fs::write(&bin, [7u8; 64]).unwrap();

    failpoint::configure("io/read=error", SEED).unwrap();
    let err = Mapping::open(&bin, LoadMode::Copy);
    assert!(
        matches!(&err, Err(IoError::Io(m)) if m.contains("injected")),
        "{err:?}"
    );

    failpoint::configure("io/mmap=error", SEED).unwrap();
    let err = Mapping::open(&bin, LoadMode::Mmap);
    assert!(
        matches!(&err, Err(IoError::Io(m)) if m.contains("injected")),
        "{err:?}"
    );

    // A real container round-trip: clean save/open, then a checksum fault
    // must surface as the typed corruption error, not a panic.
    failpoint::clear();
    let path = dir.join("chaos.tmac");
    tiny_model().save_tmac(&path).unwrap();
    assert!(TmacContainer::open(&path, LoadMode::Mmap).is_ok());
    failpoint::configure("io/checksum=error", SEED).unwrap();
    let err = TmacContainer::open(&path, LoadMode::Mmap);
    assert!(matches!(&err, Err(IoError::Checksum { .. })), "{err:?}");

    failpoint::clear();
    assert!(TmacContainer::open(&path, LoadMode::Mmap).is_ok());
    let _ = std::fs::remove_dir_all(&dir);
}
