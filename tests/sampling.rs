//! Sampling determinism and semantics, end to end: a fixed `(seed,
//! SamplingParams)` must produce the *same tokens* whatever the batching
//! schedule or thread count, `temperature = 0` must be bit-identical to
//! the pre-sampling greedy path, and stop sequences must end generation
//! even when they straddle a scheduler step boundary.
//!
//! Like `tests/batch.rs`, the thread count also comes from
//! `TMAC_TEST_THREADS` so CI can matrix these under 1 and N threads.

use tmac::core::ExecCtx;
use tmac::llm::batch::{Scheduler, SchedulerConfig, SubmitRequest};
use tmac::llm::{
    BackendKind, Engine, FinishReason, GenRequest, Model, ModelConfig, Sampler, SamplingParams,
    WeightQuant,
};

fn test_threads() -> usize {
    std::env::var("TMAC_TEST_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(2)
}

fn model(seed: u64) -> Model {
    Model::synthetic(
        &ModelConfig::tiny(),
        WeightQuant::Rtn(2),
        BackendKind::Tmac(tmac::core::KernelOpts::tmac()),
        seed,
    )
    .unwrap()
}

fn sampled_params(seed: u64) -> SamplingParams {
    SamplingParams {
        temperature: 0.9,
        top_k: 40,
        top_p: 0.95,
        repetition_penalty: 1.1,
        seed,
        ..SamplingParams::default()
    }
}

#[test]
fn same_seed_and_params_are_identical_at_any_batch_and_thread_count() {
    // The API v2 determinism contract: sampled generation is a pure
    // function of (request, params, seed) — the scheduler's batching and
    // the pool size must not change a single token.
    let prompts: Vec<Vec<u32>> = (0..6)
        .map(|i| {
            (0..(i % 3 + 1))
                .map(|j| (i * 7 + j * 3 + 1) as u32)
                .collect()
        })
        .collect();
    let n_new = 6;
    let req = |i: usize| {
        SubmitRequest::greedy(&prompts[i], n_new).with_sampling(sampled_params(1000 + i as u64))
    };

    // Reference: dedicated single-stream engine, one thread.
    let ref_ctx = ExecCtx::new(1);
    let mut engine = Engine::new(model(23));
    let singles: Vec<Vec<u32>> = (0..prompts.len())
        .map(|i| engine.generate(&req(i), &ref_ctx).unwrap().tokens)
        .collect();

    for threads in [1, 4, test_threads()] {
        let ctx = ExecCtx::new(threads);
        for max_batch in [1, 3, 16] {
            let mut sched = Scheduler::new(
                model(23),
                SchedulerConfig {
                    max_batch,
                    prefill_chunk: 4,
                    ..SchedulerConfig::default()
                },
            );
            let ids: Vec<_> = (0..prompts.len())
                .map(|i| sched.submit(req(i)).unwrap())
                .collect();
            let done = sched.run_to_completion(&ctx).unwrap();
            for (i, id) in ids.iter().enumerate() {
                let f = done.iter().find(|f| f.id == *id).unwrap();
                assert_eq!(
                    f.tokens, singles[i],
                    "threads={threads} max_batch={max_batch} sequence {i} diverged"
                );
            }
        }
    }
}

#[test]
fn temperature_zero_is_bit_identical_to_greedy() {
    // temperature = 0 is *defined* as the argmax path — explicitly setting
    // it (with whatever other knobs) must reproduce `GenRequest::greedy`
    // token for token, as must the scheduler.
    let ctx = ExecCtx::new(test_threads());
    let prompt = [1u32, 2, 3];
    let n_new = 8;

    let mut engine = Engine::new(model(9));
    let greedy = engine
        .generate(&GenRequest::greedy(&prompt, n_new), &ctx)
        .unwrap()
        .tokens;

    for params in [
        SamplingParams::default(),
        SamplingParams {
            temperature: 0.0,
            top_k: 7,
            top_p: 0.5,
            seed: 99,
            ..SamplingParams::default()
        },
    ] {
        let out = engine
            .generate(
                &GenRequest::greedy(&prompt, n_new).with_sampling(params.clone()),
                &ctx,
            )
            .unwrap();
        assert_eq!(out.tokens, greedy, "params {params:?} diverged from greedy");

        let mut sched = Scheduler::new(model(9), SchedulerConfig::default());
        let id = sched
            .submit(SubmitRequest::greedy(&prompt, n_new).with_sampling(params))
            .unwrap();
        let done = sched.run_to_completion(&ctx).unwrap();
        assert_eq!(done.iter().find(|f| f.id == id).unwrap().tokens, greedy);
    }
}

#[test]
fn top_p_approaching_zero_collapses_to_greedy() {
    // As p -> 0 the nucleus keeps only the top token, so sampling at any
    // temperature reproduces the greedy stream.
    let ctx = ExecCtx::new(test_threads());
    let prompt = [5u32, 9];
    let mut engine = Engine::new(model(41));
    let greedy = engine
        .generate(&GenRequest::greedy(&prompt, 6), &ctx)
        .unwrap()
        .tokens;
    let tiny_p = SamplingParams {
        temperature: 1.3,
        top_p: 1e-6,
        seed: 7,
        ..SamplingParams::default()
    };
    let out = engine
        .generate(&GenRequest::greedy(&prompt, 6).with_sampling(tiny_p), &ctx)
        .unwrap();
    assert_eq!(out.tokens, greedy);
}

#[test]
fn top_p_one_keeps_the_full_distribution_and_stays_seeded() {
    // p = 1 disables the nucleus cut entirely; the draw is still a pure
    // function of the seed.
    let ctx = ExecCtx::new(test_threads());
    let prompt = [2u32, 4, 6];
    let params = SamplingParams {
        temperature: 1.0,
        top_p: 1.0,
        seed: 31,
        ..SamplingParams::default()
    };
    let mut engine = Engine::new(model(13));
    let a = engine
        .generate(
            &GenRequest::greedy(&prompt, 8).with_sampling(params.clone()),
            &ctx,
        )
        .unwrap();
    let b = engine
        .generate(&GenRequest::greedy(&prompt, 8).with_sampling(params), &ctx)
        .unwrap();
    assert_eq!(a.tokens, b.tokens);
    let vocab = ModelConfig::tiny().vocab as u32;
    assert!(a.tokens.iter().all(|&t| t < vocab));
}

#[test]
fn top_p_breaks_ties_toward_the_lowest_token_id() {
    // Exactly tied logits: the sort is stable on descending value, so the
    // nucleus keeps the lowest ids first and a p -> 0 cut picks id order.
    let params = SamplingParams {
        temperature: 1.0,
        top_p: 1e-9,
        seed: 5,
        ..SamplingParams::default()
    };
    let mut s = Sampler::new(&params, 8);
    let logits = vec![0.5f32; 8]; // all tied
    assert_eq!(s.sample(&logits), 0, "tie must break toward the lowest id");
    let mut spiked = vec![0.5f32; 8];
    spiked[6] = 2.0;
    assert_eq!(s.sample(&spiked), 6);
}

#[test]
fn logit_bias_can_force_a_token() {
    let ctx = ExecCtx::new(test_threads());
    let prompt = [1u32, 2];
    let params = SamplingParams {
        temperature: 1.0,
        seed: 3,
        logit_bias: vec![(42, 1e9)],
        ..SamplingParams::default()
    };
    let mut engine = Engine::new(model(9));
    let out = engine
        .generate(&GenRequest::greedy(&prompt, 5).with_sampling(params), &ctx)
        .unwrap();
    assert_eq!(out.tokens, vec![42; 5]);
}

#[test]
fn stop_sequence_straddling_a_scheduler_step_boundary_ends_generation() {
    // The scheduler emits one token per sequence per step, so a 2-token
    // stop sequence always spans two `step_batch` calls — the match has to
    // look across the boundary. The matched tokens stay in the output.
    let ctx = ExecCtx::new(test_threads());
    let prompt = [1u32, 2, 3];
    let n_new = 8;

    let mut engine = Engine::new(model(9));
    let full = engine
        .generate(&GenRequest::greedy(&prompt, n_new), &ctx)
        .unwrap()
        .tokens;
    let stop: Vec<u32> = full[1..3].to_vec();
    // Shortest prefix of the greedy stream that ends with the stop — the
    // tiny-vocab stream repeats tokens, so compute it rather than assume.
    let hit = (1..=full.len())
        .find(|&n| full[..n].ends_with(&stop))
        .expect("stop taken from the stream must occur");

    let mut sched = Scheduler::new(
        model(9),
        SchedulerConfig {
            max_batch: 3,
            prefill_chunk: 2,
            ..SchedulerConfig::default()
        },
    );
    let id = sched
        .submit(SubmitRequest::greedy(&prompt, n_new).with_stop(vec![stop.clone()]))
        .unwrap();
    // An unrelated sequence keeps the batch busy across the stop boundary.
    let other = sched.submit(SubmitRequest::greedy(&[7, 8], n_new)).unwrap();
    let done = sched.run_to_completion(&ctx).unwrap();

    let f = done.iter().find(|f| f.id == id).unwrap();
    assert_eq!(f.tokens, full[..hit], "stop must truncate at the match");
    assert_eq!(f.reason, FinishReason::Stop);
    let o = done.iter().find(|f| f.id == other).unwrap();
    assert_eq!(o.reason, FinishReason::Length);
    assert_eq!(o.tokens.len(), n_new);
}

#[test]
fn scheduler_and_engine_agree_on_stop_semantics() {
    let ctx = ExecCtx::new(test_threads());
    let prompt = [4u32, 5];
    let n_new = 7;
    let mut engine = Engine::new(model(23));
    let full = engine
        .generate(&GenRequest::greedy(&prompt, n_new), &ctx)
        .unwrap()
        .tokens;
    let stop = vec![vec![full[0]]];

    let direct = engine
        .generate(
            &GenRequest::greedy(&prompt, n_new).with_stop(stop.clone()),
            &ctx,
        )
        .unwrap();
    assert_eq!(direct.reason, FinishReason::Stop);

    let mut sched = Scheduler::new(model(23), SchedulerConfig::default());
    let id = sched
        .submit(SubmitRequest::greedy(&prompt, n_new).with_stop(stop))
        .unwrap();
    let done = sched.run_to_completion(&ctx).unwrap();
    let f = done.iter().find(|f| f.id == id).unwrap();
    assert_eq!(f.tokens, direct.tokens);
    assert_eq!(f.reason, FinishReason::Stop);
}
