//! Integration tests for the unified execution context: table-cache
//! semantics across crates, and the end-to-end guarantee that a transformer
//! decode step shares table builds across QKV and gate/up projections.

use tmac::prelude::*;

fn quantized(m: usize, k: usize, bits: u8, seed: u64) -> QuantizedMatrix {
    let mut rng = tmac_rng::Rng::seed_from_u64(seed);
    let w: Vec<f32> = (0..m * k).map(|_| rng.f32_range(-0.6, 0.6)).collect();
    tmac::quant::rtn::quantize(&w, m, k, bits, 32).unwrap()
}

fn activation(k: usize, seed: u64) -> Vec<f32> {
    let mut rng = tmac_rng::Rng::seed_from_u64(seed ^ 0xA5A5);
    (0..k).map(|_| rng.f32_range(-1.0, 1.0)).collect()
}

#[test]
fn cache_hits_within_a_generation_misses_after_bump() {
    let ctx = ExecCtx::new(1);
    let lin = TmacLinear::new(&quantized(64, 128, 2, 1), KernelOpts::tmac()).unwrap();
    let act = activation(128, 1);
    let mut out = vec![0f32; 64];

    // Same generation, same activation: one build, then hits.
    ctx.next_activation();
    lin.gemv_cached(&act, &mut out, &ctx).unwrap();
    lin.gemv_cached(&act, &mut out, &ctx).unwrap();
    lin.gemv_cached(&act, &mut out, &ctx).unwrap();
    let s = ctx.table_stats();
    assert_eq!((s.hits, s.misses), (2, 1), "same generation must hit");

    // After the generation changes, the next lookup must rebuild.
    ctx.next_activation();
    lin.gemv_cached(&act, &mut out, &ctx).unwrap();
    let s = ctx.table_stats();
    assert_eq!((s.hits, s.misses), (2, 2), "bumped generation must miss");
}

#[test]
fn projections_sharing_an_activation_share_one_build() {
    // The QKV pattern, straight through the core API: three matrices of
    // different output sizes and bit-widths, one input activation.
    let ctx = ExecCtx::new(2);
    let wq = TmacLinear::new(&quantized(96, 192, 4, 2), KernelOpts::tmac()).unwrap();
    let wk = TmacLinear::new(&quantized(48, 192, 4, 3), KernelOpts::tmac()).unwrap();
    let wv = TmacLinear::new(&quantized(48, 192, 2, 4), KernelOpts::tmac()).unwrap();
    let act = activation(192, 2);
    let (mut q, mut k, mut v) = (vec![0f32; 96], vec![0f32; 48], vec![0f32; 48]);

    ctx.next_activation();
    wq.gemv_cached(&act, &mut q, &ctx).unwrap();
    wk.gemv_cached(&act, &mut k, &ctx).unwrap();
    wv.gemv_cached(&act, &mut v, &ctx).unwrap();
    let s = ctx.table_stats();
    assert_eq!((s.hits, s.misses), (2, 1), "QKV must share one table build");

    // Reuse must be bit-exact against the uncached path.
    let (mut q2, mut k2, mut v2) = (vec![0f32; 96], vec![0f32; 48], vec![0f32; 48]);
    wq.gemv(&act, &mut q2, &ctx).unwrap();
    wk.gemv(&act, &mut k2, &ctx).unwrap();
    wv.gemv(&act, &mut v2, &ctx).unwrap();
    assert_eq!(q, q2);
    assert_eq!(k, k2);
    assert_eq!(v, v2);
}

#[test]
fn stale_generation_never_leaks_wrong_results() {
    // Forgetting next_activation() must degrade to a rebuild, not to wrong
    // numbers (the fingerprint safety net).
    let ctx = ExecCtx::new(1);
    let lin = TmacLinear::new(&quantized(64, 128, 3, 5), KernelOpts::tmac()).unwrap();
    let a1 = activation(128, 10);
    let a2 = activation(128, 11);
    let mut out1 = vec![0f32; 64];
    let mut out2 = vec![0f32; 64];
    ctx.next_activation();
    lin.gemv_cached(&a1, &mut out1, &ctx).unwrap();
    lin.gemv_cached(&a2, &mut out2, &ctx).unwrap(); // no bump!
    let mut fresh = vec![0f32; 64];
    lin.gemv(&a2, &mut fresh, &ctx).unwrap();
    assert_eq!(out2, fresh, "stale tables must not be served");

    // Adversarial variant: the activations differ in a SINGLE element. A
    // sampled fingerprint would miss this (regression test for the full
    // whole-vector hash).
    let mut a3 = a1.clone();
    a3[1] += 10.0;
    ctx.next_activation();
    lin.gemv_cached(&a1, &mut out1, &ctx).unwrap();
    let mut out3 = vec![0f32; 64];
    lin.gemv_cached(&a3, &mut out3, &ctx).unwrap(); // still no bump
    let mut fresh3 = vec![0f32; 64];
    lin.gemv(&a3, &mut fresh3, &ctx).unwrap();
    assert_eq!(out3, fresh3, "single-element change must invalidate");
    assert_ne!(out1, out3);
}

#[test]
fn full_decode_step_shares_builds_across_the_model() {
    // End-to-end acceptance: per token and layer, wq/wk/wv share one build
    // and w1/w3 share another -> 3 hits per layer; wo, w2, head and the two
    // shared builds miss -> 4 misses per layer + 1 for the head.
    let cfg = ModelConfig::tiny();
    let model = Model::synthetic(
        &cfg,
        WeightQuant::Rtn(4),
        BackendKind::Tmac(KernelOpts::tmac()),
        77,
    )
    .unwrap();
    let mut engine = Engine::new(model);
    let ctx = ExecCtx::new(1);
    let layers = cfg.n_layers as u64;

    assert_eq!(engine.model.backend_label(), "T-MAC");
    engine.step(1, 0, &ctx).unwrap();
    let per_token = ctx.table_stats();
    assert_eq!(per_token.misses, 4 * layers + 1);
    assert_eq!(per_token.hits, 3 * layers);

    // The ratio holds steady across further tokens.
    engine.step(2, 1, &ctx).unwrap();
    let two_tokens = ctx.table_stats();
    assert_eq!(two_tokens.misses, 2 * (4 * layers + 1));
    assert_eq!(two_tokens.hits, 2 * 3 * layers);
}

#[test]
fn dequant_and_f32_backends_run_under_the_same_ctx() {
    // The unified API: every backend forwards under ExecCtx, whether or not
    // it uses the table cache.
    let ctx = ExecCtx::new(2);
    let qm = quantized(64, 96, 4, 9);
    let w_f32: Vec<f32> = qm.dequantize();
    let act = activation(96, 9);
    for kind in [BackendKind::Dequant, BackendKind::F32] {
        let lin = Linear::build(kind, &qm, &w_f32).unwrap();
        let mut out = vec![0f32; 64];
        lin.forward(&act, &mut out, &ctx).unwrap();
        assert!(out.iter().all(|x| x.is_finite()), "{kind:?}");
    }
    // Non-LUT backends never touch the table cache.
    assert_eq!(ctx.table_stats().lookups(), 0);
}
