//! End-to-end observability tests: per-request `timings` breakdowns, the
//! `/debug/trace` Chrome-trace endpoint, and the `/metrics` latency
//! histograms, exercised over real TCP against both connection drivers.
//!
//! Span *contents* (scheduler steps, request lifecycles, per-layer
//! attention, mpGEMM panels) are only recorded under `--features trace`;
//! those assertions are feature-gated. The timings breakdown and the
//! histograms are always on.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;
use tmac::core::ExecCtx;
use tmac::llm::{BackendKind, Model, ModelConfig, Scheduler, SchedulerConfig, WeightQuant};
use tmac::serve::{ConnMode, Json, ServerConfig, ServerHandle};

fn tiny_model() -> Model {
    Model::synthetic(
        &ModelConfig::tiny(),
        WeightQuant::Rtn(2),
        BackendKind::Tmac(tmac::core::KernelOpts::tmac()),
        42,
    )
    .unwrap()
}

/// Tiny-shaped model with a long context, so prompts can span KV pages
/// (the prefix cache matches page-granular).
fn long_model() -> Model {
    Model::synthetic(
        &ModelConfig::tiny().scaled(2, 96, 512),
        WeightQuant::Rtn(2),
        BackendKind::Tmac(tmac::core::KernelOpts::tmac()),
        42,
    )
    .unwrap()
}

fn start_server_with(model: Model, mode: ConnMode) -> ServerHandle {
    let sched = Scheduler::new(
        model,
        SchedulerConfig {
            max_batch: 2,
            max_pending: 16,
            ..SchedulerConfig::default()
        },
    );
    tmac::serve::start(
        sched,
        ExecCtx::new(1),
        ServerConfig {
            mode,
            idle_conn_timeout: Duration::from_millis(500),
            ..ServerConfig::default()
        },
    )
    .unwrap()
}

fn http_request(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String, String) {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    let req = format!(
        "{method} {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(req.as_bytes()).unwrap();
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).unwrap();
    let text = String::from_utf8_lossy(&raw).into_owned();
    let (head, body) = text.split_once("\r\n\r\n").expect("complete response");
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .expect("status line")
        .parse()
        .unwrap();
    (status, head.to_string(), body.to_string())
}

fn prompt_json(prompt: &[u32], max_tokens: usize, stream: bool) -> String {
    let ids: Vec<String> = prompt.iter().map(|t| t.to_string()).collect();
    format!(
        "{{\"prompt\":[{}],\"max_tokens\":{max_tokens},\"stream\":{stream}}}",
        ids.join(",")
    )
}

/// Pulls the `timings` object out of a completion body (or final SSE
/// frame) as (queue_ms, prefill_ms, decode_ms, tokens_per_s, prefix_hits).
fn timings_of(doc: &Json) -> (f64, f64, f64, f64, u64) {
    let t = doc.get("timings").expect("timings object");
    let f = |k: &str| {
        t.get(k)
            .unwrap_or_else(|| panic!("timings.{k}"))
            .as_f64()
            .unwrap_or_else(|| panic!("timings.{k} must be a number"))
    };
    (
        f("queue_ms"),
        f("prefill_ms"),
        f("decode_ms"),
        f("tokens_per_s"),
        f("prefix_hit_positions") as u64,
    )
}

fn both_modes() -> Vec<ConnMode> {
    if cfg!(target_os = "linux") {
        vec![ConnMode::Epoll, ConnMode::Threads]
    } else {
        vec![ConnMode::Threads]
    }
}

#[test]
fn timings_ride_responses_in_both_drivers() {
    for mode in both_modes() {
        let server = start_server_with(tiny_model(), mode);
        let addr = server.addr();

        // Non-streaming: the 200 body carries the breakdown.
        let (status, _, body) = http_request(
            addr,
            "POST",
            "/v1/completions",
            &prompt_json(&[1, 2, 3], 8, false),
        );
        assert_eq!(status, 200, "mode {mode:?}: {body}");
        let doc = Json::parse(&body).unwrap();
        let (queue_ms, prefill_ms, decode_ms, tok_s, _) = timings_of(&doc);
        assert!(queue_ms >= 0.0, "mode {mode:?}: queue {queue_ms}");
        assert!(prefill_ms >= 0.0, "mode {mode:?}: prefill {prefill_ms}");
        // Eight decode steps on a real model take measurable time, and the
        // throughput figure must be finite and positive.
        assert!(decode_ms > 0.0, "mode {mode:?}: decode {decode_ms}");
        assert!(
            tok_s > 0.0 && tok_s.is_finite(),
            "mode {mode:?}: tokens_per_s {tok_s}"
        );

        // Streaming: the final frame (the one with finish_reason) carries
        // the same breakdown.
        let (status, _, text) = http_request(
            addr,
            "POST",
            "/v1/completions",
            &prompt_json(&[4, 5], 6, true),
        );
        assert_eq!(status, 200, "mode {mode:?}");
        let tail = text
            .lines()
            .filter_map(|l| l.strip_prefix("data: "))
            .rfind(|p| *p != "[DONE]")
            .expect("final SSE frame");
        let doc = Json::parse(tail).unwrap();
        let (_, _, decode_ms, tok_s, _) = timings_of(&doc);
        assert!(decode_ms > 0.0, "mode {mode:?} (SSE): decode {decode_ms}");
        assert!(tok_s > 0.0, "mode {mode:?} (SSE): tokens_per_s {tok_s}");
        server.shutdown();
    }
}

#[test]
fn timings_report_prefix_hits_consistently_with_gauges() {
    // Two prompts sharing a page-spanning prefix: the second must report
    // its prefix hit in the response timings, and the number must agree
    // with the server's prefix gauges.
    let prefix: Vec<u32> = (0..70u32).map(|i| (i * 7 + 3) % 90).collect();
    let mut a = prefix.clone();
    a.extend_from_slice(&[1, 2]);
    let mut b = prefix;
    b.extend_from_slice(&[3, 4]);

    let server = start_server_with(long_model(), ConnMode::Auto);
    let addr = server.addr();
    let (status, _, body) =
        http_request(addr, "POST", "/v1/completions", &prompt_json(&a, 2, false));
    assert_eq!(status, 200, "{body}");
    let first_hits = timings_of(&Json::parse(&body).unwrap()).4;

    let (status, _, body) =
        http_request(addr, "POST", "/v1/completions", &prompt_json(&b, 2, false));
    assert_eq!(status, 200, "{body}");
    let second_hits = timings_of(&Json::parse(&body).unwrap()).4;
    // The shared prefix spans one full KV page (64 positions); the second
    // request must reuse at least that page.
    assert!(
        second_hits >= 64,
        "second request must hit the cached prefix: {second_hits}"
    );

    // The step loop refreshes the gauges on its own cadence.
    let metrics = server.metrics();
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while metrics.prefix_hit_positions.get() < second_hits && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(20));
    }
    assert!(
        metrics.prefix_hit_positions.get() >= first_hits + second_hits,
        "gauge {} must cover the per-request reports {first_hits}+{second_hits}",
        metrics.prefix_hit_positions.get()
    );
    server.shutdown();
}

#[test]
fn debug_trace_serves_chrome_trace_json_in_both_drivers() {
    for mode in both_modes() {
        let server = start_server_with(tiny_model(), mode);
        let addr = server.addr();
        // Generate some work first so (feature-on) the rings hold spans.
        let (status, _, body) = http_request(
            addr,
            "POST",
            "/v1/completions",
            &prompt_json(&[1, 2, 3], 6, false),
        );
        assert_eq!(status, 200, "mode {mode:?}: {body}");

        let (status, head, body) = http_request(addr, "GET", "/debug/trace", "");
        assert_eq!(status, 200, "mode {mode:?}");
        assert!(head.contains("application/json"), "mode {mode:?}: {head}");
        // Valid JSON in Chrome Trace Event Format shape.
        let doc = Json::parse(&body)
            .unwrap_or_else(|e| panic!("mode {mode:?}: trace is not valid JSON: {e}"));
        assert!(
            doc.get("traceEvents").and_then(|v| v.as_arr()).is_some(),
            "mode {mode:?}: missing traceEvents array"
        );

        // With recording compiled in, the dump must hold the span taxonomy
        // the issue promises: scheduler steps, the request lifecycle, and
        // the model layers under it down to mpGEMM panels.
        #[cfg(feature = "trace")]
        for (cat, name) in [
            ("sched", "step"),
            ("sched", "queue_wait"),
            ("serve", "request"),
            ("llm", "prefill_chunk"),
            ("llm", "attention"),
            ("gemm", "panel"),
        ] {
            assert!(
                body.contains(&format!("\"name\":\"{name}\"")),
                "mode {mode:?}: no {cat}/{name} span in trace dump"
            );
        }
        // The GET / HTTP wrong-method contract holds for the new route too.
        let (status, head, _) = http_request(addr, "POST", "/debug/trace", "");
        assert_eq!(status, 405, "mode {mode:?}");
        assert!(head.contains("Allow: GET"), "mode {mode:?}: {head}");
        server.shutdown();
    }
}

#[test]
fn metrics_expose_latency_histograms() {
    let server = start_server_with(tiny_model(), ConnMode::Auto);
    let addr = server.addr();
    // One streaming completion touches every histogram: TTFT and e2e on
    // the request path, queue wait at admission, step duration and batch
    // occupancy on every scheduler step.
    let (status, _, _) = http_request(
        addr,
        "POST",
        "/v1/completions",
        &prompt_json(&[1, 2], 5, true),
    );
    assert_eq!(status, 200);

    let (status, _, text) = http_request(addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    for family in [
        "tmac_ttft_seconds",
        "tmac_e2e_latency_seconds",
        "tmac_queue_wait_seconds",
        "tmac_step_duration_seconds",
        "tmac_batch_occupancy",
    ] {
        assert!(
            text.contains(&format!("{family}_bucket{{le=\"")),
            "missing {family} buckets in:\n{text}"
        );
        assert!(
            text.contains(&format!("{family}_bucket{{le=\"+Inf\"}}")),
            "missing {family} +Inf bucket"
        );
        assert!(
            text.contains(&format!("{family}_sum ")),
            "missing {family}_sum"
        );
        assert!(
            text.contains(&format!("{family}_count ")),
            "missing {family}_count"
        );
    }
    // Each histogram saw the request: every +Inf cumulative count >= 1.
    for family in ["tmac_ttft_seconds", "tmac_e2e_latency_seconds"] {
        let line = text
            .lines()
            .find(|l| l.starts_with(&format!("{family}_count")))
            .unwrap();
        let n: u64 = line.rsplit_once(' ').unwrap().1.parse().unwrap();
        assert!(n >= 1, "{family}_count is {n}");
    }
    server.shutdown();
}
